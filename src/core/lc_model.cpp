#include "core/lc_model.hpp"

#include "numeric/polynomial.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>

// Dimensions for the SSN-L011 units pass (docs/STATIC_ANALYSIS.md). The
// resonator members carry their Eqn 13 units: omega0, sigma, omega_d and
// the characteristic roots s1/s2 are rates [1/s]; zeta is dimensionless.
// ssn-units: inductance=H, capacitance=F, slope=V/s, vdd=V, k=A/V, lambda=1
// ssn-units: n_drivers=1
// ssn-units: vx=V, t=s, dt=s, t_on=s, t_ramp_end=s, active_ramp=s
// ssn-units: beta=V^2/A, v_inf=V, vn=V, vn_dot=V/s, vn_raw=V, vn_dot_raw=V/s
// ssn-units: i_driver=A, i_inductor=A, i_capacitor=A
// ssn-units: omega0_=Hz, zeta_=1, sigma_=Hz, omega_d_=Hz, s1_=Hz, s2_=Hz
// ssn-units: omega0=Hz, zeta=1, sigma=Hz, omega_d=Hz
// ssn-units: pi=1, v0=V, dv0=V/s, v_max=V, t_first_peak=s, free_response=V
// ssn-units: free_response_dot=V/s, vn_extended=V

namespace ssnkit::core {

namespace {
/// Width of the numerical band around zeta = 1 treated as critically
/// damped: the two-real-root expressions lose precision as s1 -> s2.
constexpr double kCriticalBand = 1e-6;
}  // namespace

const char* to_string(DampingRegion region) {
  switch (region) {
    case DampingRegion::kOverDamped: return "over-damped";
    case DampingRegion::kCriticallyDamped: return "critically-damped";
    case DampingRegion::kUnderDamped: return "under-damped";
  }
  return "?";
}

const char* to_string(MaxSsnCase c) {
  switch (c) {
    case MaxSsnCase::kOverDamped: return "case 1 (over-damped, boundary)";
    case MaxSsnCase::kCriticallyDamped: return "case 2 (critically damped, boundary)";
    case MaxSsnCase::kUnderDampedFirstPeak: return "case 3a (under-damped, first peak)";
    case MaxSsnCase::kUnderDampedBoundary: return "case 3b (under-damped, boundary)";
  }
  return "?";
}

LcModel::LcModel(SsnScenario scenario) : scenario_(std::move(scenario)) {
  scenario_.validate();
  if (!(scenario_.capacitance > 0.0))
    throw std::invalid_argument("LcModel: capacitance must be > 0 (use LOnlyModel)");

  const double l = scenario_.inductance;
  const double c = scenario_.capacitance;
  const double nkl =
      double(scenario_.n_drivers) * scenario_.device.k * scenario_.device.lambda;

  omega0_ = 1.0 / std::sqrt(l * c);
  zeta_ = 0.5 * nkl * std::sqrt(l / c);
  sigma_ = zeta_ * omega0_;

  if (std::fabs(zeta_ - 1.0) <= kCriticalBand) {
    region_ = DampingRegion::kCriticallyDamped;
  } else if (zeta_ > 1.0) {
    region_ = DampingRegion::kOverDamped;
    // Characteristic equation L*C*s^2 + N*L*K*lambda*s + 1 = 0, solved with
    // the cancellation-safe quadratic.
    const auto roots = numeric::quadratic_real_roots(l * c, l * nkl, 1.0);
    if (!roots)
      throw std::logic_error("LcModel: over-damped region must have real roots");
    s1_ = (*roots)[0];
    s2_ = (*roots)[1];
  } else {
    region_ = DampingRegion::kUnderDamped;
    omega_d_ = omega0_ * std::sqrt(1.0 - zeta_ * zeta_);
  }
}

double LcModel::vn_raw(double dt) const {
  const double v_inf = scenario_.v_inf();
  switch (region_) {
    case DampingRegion::kOverDamped:
      // v = V_inf * (1 + (s2*e^{s1 dt} - s1*e^{s2 dt})/(s1 - s2))
      return v_inf * (1.0 + (s2_ * std::exp(s1_ * dt) - s1_ * std::exp(s2_ * dt)) /
                                (s1_ - s2_));
    case DampingRegion::kCriticallyDamped:
      return v_inf * (1.0 - (1.0 + omega0_ * dt) * std::exp(-omega0_ * dt));
    case DampingRegion::kUnderDamped: {
      const double e = std::exp(-sigma_ * dt);
      return v_inf * (1.0 - e * (std::cos(omega_d_ * dt) +
                                 (sigma_ / omega_d_) * std::sin(omega_d_ * dt)));
    }
  }
  return 0.0;
}

double LcModel::vn_dot_raw(double dt) const {
  const double v_inf = scenario_.v_inf();
  switch (region_) {
    case DampingRegion::kOverDamped:
      return v_inf * (s1_ * s2_ * (std::exp(s1_ * dt) - std::exp(s2_ * dt))) /
             (s1_ - s2_);
    case DampingRegion::kCriticallyDamped:
      return v_inf * omega0_ * omega0_ * dt * std::exp(-omega0_ * dt);
    case DampingRegion::kUnderDamped: {
      // v' = V_inf * (omega0^2/omega_d) * e^{-sigma dt} * sin(omega_d dt)
      return v_inf * (omega0_ * omega0_ / omega_d_) * std::exp(-sigma_ * dt) *
             std::sin(omega_d_ * dt);
    }
  }
  return 0.0;
}

double LcModel::vn(double t) const {
  const double t_on = scenario_.t_on();
  if (t <= t_on) return 0.0;
  const double t_clamped = std::min(t, scenario_.t_ramp_end());
  return vn_raw(t_clamped - t_on);
}

double LcModel::vn_dot(double t) const {
  const double t_on = scenario_.t_on();
  if (t <= t_on || t > scenario_.t_ramp_end()) return 0.0;
  return vn_dot_raw(t - t_on);
}

double LcModel::i_driver(double t) const {
  const double t_on = scenario_.t_on();
  if (t <= t_on) return 0.0;
  const double t_clamped = std::min(t, scenario_.t_ramp_end());
  const devices::AsdmParams& d = scenario_.device;
  return d.k * (scenario_.slope * t_clamped - d.lambda * vn(t_clamped) - d.vx);
}

double LcModel::i_inductor(double t) const {
  return double(scenario_.n_drivers) * i_driver(t) -
         scenario_.capacitance * vn_dot(t);
}

double LcModel::t_first_peak() const {
  if (region_ != DampingRegion::kUnderDamped)
    throw std::logic_error("LcModel::t_first_peak: not under-damped");
  return scenario_.t_on() + std::numbers::pi / omega_d_;
}

MaxSsnCase LcModel::max_case() const {
  switch (region_) {
    case DampingRegion::kOverDamped:
      return MaxSsnCase::kOverDamped;
    case DampingRegion::kCriticallyDamped:
      return MaxSsnCase::kCriticallyDamped;
    case DampingRegion::kUnderDamped:
      // Inequality 26: the first peak must land inside the ramp.
      return (std::numbers::pi / omega_d_ <= scenario_.active_ramp())
                 ? MaxSsnCase::kUnderDampedFirstPeak
                 : MaxSsnCase::kUnderDampedBoundary;
  }
  return MaxSsnCase::kOverDamped;
}

double LcModel::v_max() const {
  switch (max_case()) {
    case MaxSsnCase::kOverDamped:
    case MaxSsnCase::kCriticallyDamped:
    case MaxSsnCase::kUnderDampedBoundary:
      // Monotone (or still pre-peak) during the ramp: boundary value.
      return vn_raw(scenario_.active_ramp());
    case MaxSsnCase::kUnderDampedFirstPeak:
      // Eqn 24: first peak of the under-damped step response.
      return scenario_.v_inf() *
             (1.0 + std::exp(-sigma_ * std::numbers::pi / omega_d_));
  }
  return 0.0;
}

double LcModel::free_response(double v0, double dv0, double dt) const {
  switch (region_) {
    case DampingRegion::kOverDamped: {
      const double a = (dv0 - s2_ * v0) / (s1_ - s2_);
      const double b = (s1_ * v0 - dv0) / (s1_ - s2_);
      return a * std::exp(s1_ * dt) + b * std::exp(s2_ * dt);
    }
    case DampingRegion::kCriticallyDamped:
      return (v0 + (dv0 + omega0_ * v0) * dt) * std::exp(-omega0_ * dt);
    case DampingRegion::kUnderDamped: {
      const double e = std::exp(-sigma_ * dt);
      return e * (v0 * std::cos(omega_d_ * dt) +
                  (dv0 + sigma_ * v0) / omega_d_ * std::sin(omega_d_ * dt));
    }
  }
  return 0.0;
}

double LcModel::free_response_dot(double v0, double dv0, double dt) const {
  switch (region_) {
    case DampingRegion::kOverDamped: {
      const double a = (dv0 - s2_ * v0) / (s1_ - s2_);
      const double b = (s1_ * v0 - dv0) / (s1_ - s2_);
      return a * s1_ * std::exp(s1_ * dt) + b * s2_ * std::exp(s2_ * dt);
    }
    case DampingRegion::kCriticallyDamped: {
      const double c1 = dv0 + omega0_ * v0;
      return (c1 - omega0_ * (v0 + c1 * dt)) * std::exp(-omega0_ * dt);
    }
    case DampingRegion::kUnderDamped: {
      const double e = std::exp(-sigma_ * dt);
      const double c2 = (dv0 + sigma_ * v0) / omega_d_;
      const double val = v0 * std::cos(omega_d_ * dt) +
                         c2 * std::sin(omega_d_ * dt);
      const double dval = -v0 * omega_d_ * std::sin(omega_d_ * dt) +
                          c2 * omega_d_ * std::cos(omega_d_ * dt);
      return e * (dval - sigma_ * val);
    }
  }
  return 0.0;
}

double LcModel::vn_extended(double t) const {
  const double tr = scenario_.t_ramp_end();
  if (t <= tr) return vn(t);
  const double v_r = vn_raw(tr - scenario_.t_on());
  const double dv_r = vn_dot_raw(tr - scenario_.t_on());
  return free_response(v_r, dv_r, t - tr);
}

double LcModel::vn_dot_extended(double t) const {
  const double tr = scenario_.t_ramp_end();
  if (t <= scenario_.t_on()) return 0.0;
  if (t <= tr) return vn_dot_raw(t - scenario_.t_on());
  const double v_r = vn_raw(tr - scenario_.t_on());
  const double dv_r = vn_dot_raw(tr - scenario_.t_on());
  return free_response_dot(v_r, dv_r, t - tr);
}

LcModel::ExtendedMax LcModel::v_max_extended(double horizon) const {
  const double tr = scenario_.t_ramp_end();
  if (horizon <= 0.0) {
    // Several decay constants past the ramp so every post-ramp peak is in.
    const double decay =
        region_ == DampingRegion::kOverDamped ? -1.0 / s2_ : 1.0 / sigma_;
    horizon = tr + 8.0 * decay;
  }
  if (horizon <= tr)
    throw std::invalid_argument("v_max_extended: horizon must exceed t_r");

  // Within-ramp maximum from Table 1.
  ExtendedMax best{v_max(), 0.0, false};
  best.t = (max_case() == MaxSsnCase::kUnderDampedFirstPeak)
               ? t_first_peak()
               : tr;

  // Post-ramp: dense scan plus parabolic refinement. The free response has
  // at most a countable set of peaks spaced by pi/omega_d (or one peak when
  // over-damped), so 4096 samples over the horizon resolve them all.
  constexpr std::size_t kSamples = 4096;
  double prev_t = tr, prev_v = vn_extended(tr);
  for (std::size_t i = 1; i <= kSamples; ++i) {
    const double t = tr + (horizon - tr) * double(i) / double(kSamples);
    const double v = vn_extended(t);
    if (v > best.v) best = {v, t, true};
    prev_t = t;
    prev_v = v;
  }
  (void)prev_t;
  (void)prev_v;
  if (best.after_ramp) {
    // Refine with a few Newton steps on the derivative.
    double t = best.t;
    for (int it = 0; it < 30; ++it) {
      const double d = vn_dot_extended(t);
      const double h = (horizon - tr) * 1e-7;
      const double dd = (vn_dot_extended(t + h) - vn_dot_extended(t - h)) /
                        (2.0 * h);
      if (dd == 0.0) break;  // ssnlint-ignore(SSN-L001)
      const double next = t - d / dd;
      if (!(next > tr && next < horizon) || std::fabs(next - t) < 1e-18) break;
      t = next;
    }
    const double v = vn_extended(t);
    if (v >= best.v) best = {v, t, true};
  }
  return best;
}

waveform::Waveform LcModel::vn_waveform(std::size_t points) const {
  return waveform::Waveform::from_function([this](double t) { return vn(t); }, 0.0,
                                           scenario_.t_ramp_end(), points);
}

waveform::Waveform LcModel::current_waveform(std::size_t points) const {
  return waveform::Waveform::from_function(
      [this](double t) { return i_inductor(t); }, 0.0, scenario_.t_ramp_end(),
      points);
}

}  // namespace ssnkit::core
