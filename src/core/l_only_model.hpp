// Section 3 of the paper: closed-form SSN with the ground inductance as the
// only parasitic.
//
// With v_in = S*t and the ASDM device, the ground-bounce ODE
//     V_n = N*L * d/dt [ K*(S*t - lambda*V_n - V_x) ]
// is first order and linear; its exact solution for t in [t_on, t_r] is
//
//     V_n(t)  = N*L*K*S * (1 - exp(-(t - t_on)/tau)),  tau = N*L*K*lambda
//
// (Eqn 6), the per-driver current is Eqn 8, and the maximum — reached at
// the end of the ramp — is Eqn 7 / Eqn 10:
//
//     V_max = K*beta * (1 - exp(-(vdd - V_x)/(lambda*K*beta))),  beta = N*L*S.
#pragma once

#include "core/scenario.hpp"
#include "waveform/waveform.hpp"

namespace ssnkit::core {

class LOnlyModel {
 public:
  /// The scenario's capacitance is ignored by construction (that is the
  /// point of this model); everything else must validate.
  explicit LOnlyModel(SsnScenario scenario);

  const SsnScenario& scenario() const { return scenario_; }

  /// Time constant tau = N*L*K*lambda (Eqn 5).
  double tau() const;

  /// Ground-bounce voltage (Eqn 6). Zero before turn-on; after the ramp
  /// ends the formula no longer applies and the value is held at V_n(t_r)
  /// (the paper's formulas are only valid while the input rises).
  double vn(double t) const;

  /// dV_n/dt, with the same domain convention as vn().
  double vn_dot(double t) const;

  /// Per-driver drain current (Eqn 8); total inductor current is N times
  /// this (the inductance carries the whole discharge in the L-only case).
  double i_driver(double t) const;
  double i_inductor(double t) const { return double(scenario_.n_drivers) * i_driver(t); }

  /// Maximum SSN voltage (Eqn 7), attained at t = t_r.
  double v_max() const;

  waveform::Waveform vn_waveform(std::size_t points = 512) const;
  waveform::Waveform current_waveform(std::size_t points = 512) const;

 private:
  SsnScenario scenario_;
};

}  // namespace ssnkit::core
