// Section 4 of the paper: SSN with both the ground inductance L and the
// pad/wire capacitance C. The ground bounce obeys the 2nd-order ODE
//
//     L*C*V_n'' + N*L*K*lambda*V_n' + V_n = N*L*K*S      (Eqn 13)
//     V_n(t_on) = 0,  V_n'(t_on) = 0
//
// i.e. a damped resonator with
//     omega0 = 1/sqrt(L*C),   zeta = (N*K*lambda/2)*sqrt(L/C).
//
// The maximum SSN voltage needs FOUR different formulas (Table 1):
//   case 1  zeta > 1  (over-damped)        max at the ramp end t_r
//   case 2  zeta = 1  (critically damped)  max at the ramp end t_r
//   case 3a zeta < 1, first peak inside the ramp
//           (pi/omega_d <= t_r - t_on)     max = V_inf*(1 + e^(-sigma*pi/omega_d))
//   case 3b zeta < 1, first peak after the ramp
//                                          max at the ramp end t_r
#pragma once

#include "core/scenario.hpp"
#include "waveform/waveform.hpp"

namespace ssnkit::core {

enum class DampingRegion {
  kOverDamped,
  kCriticallyDamped,
  kUnderDamped,
};

/// Which of the paper's Table 1 rows produced the maximum.
enum class MaxSsnCase {
  kOverDamped,            ///< case 1
  kCriticallyDamped,      ///< case 2
  kUnderDampedFirstPeak,  ///< case 3a
  kUnderDampedBoundary,   ///< case 3b
};

const char* to_string(DampingRegion region);
const char* to_string(MaxSsnCase c);

class LcModel {
 public:
  /// Requires scenario.capacitance > 0 (use LOnlyModel otherwise).
  explicit LcModel(SsnScenario scenario);

  const SsnScenario& scenario() const { return scenario_; }

  double omega0() const { return omega0_; }
  double zeta() const { return zeta_; }
  /// Decay rate sigma = zeta*omega0 (under-damped envelope).
  double sigma() const { return sigma_; }
  /// Damped natural frequency (under-damped region only; 0 otherwise).
  double omega_d() const { return omega_d_; }

  DampingRegion region() const { return region_; }

  /// Ground-bounce voltage: 0 before turn-on, the per-region analytic
  /// solution of Eqn 13 during the ramp, held at V_n(t_r) afterwards.
  double vn(double t) const;
  /// dV_n/dt with the same domain convention.
  double vn_dot(double t) const;

  /// Per-driver drain current K*(S*t - lambda*V_n - V_x).
  double i_driver(double t) const;
  /// Inductor current: total driver current minus the pad-capacitor
  /// displacement current C*V_n'.
  double i_inductor(double t) const;

  /// Time of the first under-damped peak, t_on + pi/omega_d. Throws
  /// std::logic_error outside the under-damped region.
  double t_first_peak() const;

  /// Maximum SSN voltage over the ramp (Table 1).
  double v_max() const;
  /// Which Table 1 formula v_max() used.
  MaxSsnCase max_case() const;

  waveform::Waveform vn_waveform(std::size_t points = 512) const;
  waveform::Waveform current_waveform(std::size_t points = 512) const;

  // --- post-ramp continuation (extension beyond the paper) -----------------
  // For t > t_r the input is constant at vdd, the forcing term disappears
  // (Eqn 13 with S = 0) and the bounce relaxes as a free damped oscillation
  // from the state (V_n(t_r), V_n'(t_r)). The paper stops at t_r; these
  // methods continue the same analytic machinery past it.

  /// V_n at any time, using Eqn 13 during the ramp and the free response
  /// afterwards (continuous value and derivative at t_r).
  double vn_extended(double t) const;
  double vn_dot_extended(double t) const;

  /// Global maximum over [0, horizon] (default: several decay constants
  /// past t_r). For case 3b the true physical peak lies AFTER the ramp;
  /// this is the quantity the paper's boundary formula underestimates.
  struct ExtendedMax {
    double v = 0.0;
    double t = 0.0;
    bool after_ramp = false;  ///< peak occurred past t_r
  };
  ExtendedMax v_max_extended(double horizon = 0.0) const;

 private:
  double vn_raw(double dt) const;      // solution at dt = t - t_on >= 0
  double vn_dot_raw(double dt) const;
  /// Free (unforced) response from initial state (v0, dv0) at dt >= 0.
  double free_response(double v0, double dv0, double dt) const;
  double free_response_dot(double v0, double dv0, double dt) const;

  SsnScenario scenario_;
  DampingRegion region_;
  double omega0_ = 0.0;
  double zeta_ = 0.0;
  double sigma_ = 0.0;
  double omega_d_ = 0.0;
  double s1_ = 0.0, s2_ = 0.0;  // over-damped real roots (s1 < s2 < 0)
};

}  // namespace ssnkit::core
