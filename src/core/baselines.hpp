// Baseline maximum-SSN estimators the paper compares against in Fig. 3.
//
// The original Vemuru '96 and Song '99 papers are not openly available, so
// these are RECONSTRUCTIONS from the assumptions the Ding–Mazumder paper
// attributes to each (see DESIGN.md, substitutions table). All three are
// built on the Sakurai–Newton alpha-power law
//
//     I_D = B * (V_GS - V_T)^alpha
//
// calibrated to the same golden device as the ASDM (devices::fit_alpha_power).
//
//  * Senthinathan–Prince '91 (square law, alpha forced to 2): triangular
//    current approximation — dI/dt ~= I_peak / (t_r - t_on) — giving the
//    implicit equation
//        V = N*L*S*B*(VDD - V - VT)^2 / (VDD - VT).
//  * Vemuru '96: "the derivative of the drain current is constant", i.e.
//    gm evaluated at the (noise-reduced) final overdrive; the resulting
//    first-order ODE is our Eqn 6 with lambda = 1, K = gm, V_x = V_T:
//        V = N*L*gm*S*(1 - exp(-(VDD-VT)/(S*N*L*gm))),
//        gm = alpha*B*(VDD - V - VT)^(alpha-1).
//  * Song '99: constant dI/dt AND a linear-in-time noise voltage:
//        V = N*L*alpha*B*S*(VDD - V - VT)^(alpha-1) * (1 - V/(VDD-VT)).
//
// Each equation is solved exactly (safeguarded root finding), so the only
// approximations are the models' own.
#pragma once

namespace ssnkit::core {

/// Alpha-power calibration + switching event for the baseline formulas.
struct BaselineInputs {
  int n_drivers = 8;        ///< N
  double inductance = 5e-9; ///< L [H]
  double slope = 1.8e10;    ///< S [V/s]
  double vdd = 1.8;         ///< supply / ramp top [V]
  double b = 0.0;           ///< alpha-power coefficient B [A/V^alpha]
  double vt = 0.45;         ///< threshold V_T [V]
  double alpha = 1.3;       ///< alpha-power exponent

  void validate() const;
};

/// Classic square-law estimate (Senthinathan & Prince, JSSC 1991 style).
double senthinathan_prince_vmax(const BaselineInputs& in);

/// Vemuru 1996 style estimate (velocity saturation via alpha < 2).
double vemuru_vmax(const BaselineInputs& in);

/// Song et al. 1999 style estimate.
double song_vmax(const BaselineInputs& in);

}  // namespace ssnkit::core
