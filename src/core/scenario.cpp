#include "core/scenario.hpp"

#include "support/contracts.hpp"

// ssn-units: inductance=H, capacitance=F, slope=V/s, vdd=V, k=A/V, lambda=1
// ssn-units: n_drivers=1
// ssn-units: vx=V, critical_capacitance=F

namespace ssnkit::core {

void SsnScenario::validate() const {
  SSN_REQUIRE(n_drivers >= 1, "SsnScenario: n_drivers must be >= 1");
  SSN_REQUIRE(inductance > 0.0, "SsnScenario: inductance must be > 0");
  SSN_REQUIRE(capacitance >= 0.0, "SsnScenario: capacitance must be >= 0");
  SSN_REQUIRE(slope > 0.0, "SsnScenario: slope must be > 0");
  SSN_REQUIRE(vdd > 0.0, "SsnScenario: vdd must be > 0");
  device.validate();
  SSN_REQUIRE(device.vx < vdd, "SsnScenario: device V_x must be below vdd");
}

double SsnScenario::critical_capacitance() const {
  const double nkl = double(n_drivers) * device.k * device.lambda;
  return nkl * nkl * inductance / 4.0;
}

SsnScenario SsnScenario::with_drivers(int n) const {
  SsnScenario s = *this;
  s.n_drivers = n;
  return s;
}

SsnScenario SsnScenario::with_capacitance(double c) const {
  SsnScenario s = *this;
  s.capacitance = c;
  return s;
}

SsnScenario SsnScenario::with_inductance(double l) const {
  SsnScenario s = *this;
  s.inductance = l;
  return s;
}

SsnScenario SsnScenario::with_slope(double sl) const {
  SsnScenario s = *this;
  s.slope = sl;
  return s;
}

}  // namespace ssnkit::core
