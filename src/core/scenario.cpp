#include "core/scenario.hpp"

#include <stdexcept>

namespace ssnkit::core {

void SsnScenario::validate() const {
  if (n_drivers < 1) throw std::invalid_argument("SsnScenario: n_drivers must be >= 1");
  if (!(inductance > 0.0))
    throw std::invalid_argument("SsnScenario: inductance must be > 0");
  if (capacitance < 0.0)
    throw std::invalid_argument("SsnScenario: capacitance must be >= 0");
  if (!(slope > 0.0)) throw std::invalid_argument("SsnScenario: slope must be > 0");
  if (!(vdd > 0.0)) throw std::invalid_argument("SsnScenario: vdd must be > 0");
  device.validate();
  if (!(device.vx < vdd))
    throw std::invalid_argument("SsnScenario: device V_x must be below vdd");
}

double SsnScenario::critical_capacitance() const {
  const double nkl = double(n_drivers) * device.k * device.lambda;
  return nkl * nkl * inductance / 4.0;
}

SsnScenario SsnScenario::with_drivers(int n) const {
  SsnScenario s = *this;
  s.n_drivers = n;
  return s;
}

SsnScenario SsnScenario::with_capacitance(double c) const {
  SsnScenario s = *this;
  s.capacitance = c;
  return s;
}

SsnScenario SsnScenario::with_inductance(double l) const {
  SsnScenario s = *this;
  s.inductance = l;
  return s;
}

SsnScenario SsnScenario::with_slope(double sl) const {
  SsnScenario s = *this;
  s.slope = sl;
  return s;
}

}  // namespace ssnkit::core
