#include "core/l_only_model.hpp"

#include <algorithm>
#include <cmath>

// Dimensions for the SSN-L011 units pass (docs/STATIC_ANALYSIS.md):
// scenario fields, ASDM constants, and the accessor methods used below.
// ssn-units: inductance=H, capacitance=F, slope=V/s, vdd=V, k=A/V, lambda=1
// ssn-units: n_drivers=1
// ssn-units: vx=V, t=s, t_on=s, t_ramp_end=s, active_ramp=s, tau=s
// ssn-units: beta=V^2/A, v_inf=V, vn=V, vn_dot=V/s, i_driver=A, i_inductor=A

namespace ssnkit::core {

LOnlyModel::LOnlyModel(SsnScenario scenario) : scenario_(std::move(scenario)) {
  scenario_.validate();
}

double LOnlyModel::tau() const {
  return double(scenario_.n_drivers) * scenario_.inductance * scenario_.device.k *
         scenario_.device.lambda;
}

double LOnlyModel::vn(double t) const {
  const double t_on = scenario_.t_on();
  if (t <= t_on) return 0.0;
  const double t_clamped = std::min(t, scenario_.t_ramp_end());
  return scenario_.v_inf() * (1.0 - std::exp(-(t_clamped - t_on) / tau()));
}

double LOnlyModel::vn_dot(double t) const {
  const double t_on = scenario_.t_on();
  if (t <= t_on || t > scenario_.t_ramp_end()) return 0.0;
  return scenario_.v_inf() / tau() * std::exp(-(t - t_on) / tau());
}

double LOnlyModel::i_driver(double t) const {
  const double t_on = scenario_.t_on();
  if (t <= t_on) return 0.0;
  const double t_clamped = std::min(t, scenario_.t_ramp_end());
  const devices::AsdmParams& d = scenario_.device;
  // Eqn 8: i = K*(S*t - lambda*V_n(t) - V_x).
  return d.k * (scenario_.slope * t_clamped - d.lambda * vn(t_clamped) - d.vx);
}

double LOnlyModel::v_max() const {
  // Eqn 7 / Eqn 10: evaluated at the end of the ramp. The exponent is
  // (vdd - V_x)/(S*tau) = (vdd - V_x)/(lambda*K*beta).
  const double exponent =
      scenario_.active_ramp() / tau();
  return scenario_.v_inf() * (1.0 - std::exp(-exponent));
}

waveform::Waveform LOnlyModel::vn_waveform(std::size_t points) const {
  return waveform::Waveform::from_function([this](double t) { return vn(t); }, 0.0,
                                           scenario_.t_ramp_end(), points);
}

waveform::Waveform LOnlyModel::current_waveform(std::size_t points) const {
  return waveform::Waveform::from_function(
      [this](double t) { return i_inductor(t); }, 0.0, scenario_.t_ramp_end(),
      points);
}

}  // namespace ssnkit::core
