#include "core/baselines.hpp"

#include "numeric/roots.hpp"
#include "support/contracts.hpp"

#include <cmath>
#include <stdexcept>

namespace ssnkit::core {

namespace {

/// Solve V = rhs(V) for V in [0, vdd - vt). rhs must be decreasing in V
/// (more noise -> less overdrive -> less current), so f(V) = V - rhs(V)
/// brackets a unique root.
double solve_self_consistent(const std::function<double(double)>& rhs,
                             double vdd, double vt) {
  SSN_REQUIRE(vdd > vt, "solve_self_consistent: need vdd > vt");
  const double hi = vdd - vt - 1e-12;
  const auto f = [&](double v) { return v - rhs(v); };
  if (f(0.0) >= 0.0) return 0.0;  // rhs(0) <= 0: no noise predicted
  if (f(hi) <= 0.0) return hi;    // saturated at the full overdrive
  return numeric::brent(f, 0.0, hi);
}

}  // namespace

void BaselineInputs::validate() const {
  if (n_drivers < 1) throw std::invalid_argument("BaselineInputs: n_drivers >= 1");
  if (!(inductance > 0.0))
    throw std::invalid_argument("BaselineInputs: inductance must be > 0");
  if (!(slope > 0.0)) throw std::invalid_argument("BaselineInputs: slope must be > 0");
  if (!(vdd > 0.0)) throw std::invalid_argument("BaselineInputs: vdd must be > 0");
  if (!(b > 0.0)) throw std::invalid_argument("BaselineInputs: b must be > 0");
  if (!(vt > 0.0 && vt < vdd))
    throw std::invalid_argument("BaselineInputs: vt must be in (0, vdd)");
  if (!(alpha >= 1.0 && alpha <= 2.0))
    throw std::invalid_argument("BaselineInputs: alpha must be in [1, 2]");
}

double senthinathan_prince_vmax(const BaselineInputs& in) {
  in.validate();
  const double nl = double(in.n_drivers) * in.inductance;
  // Square-law coefficient matched to the calibrated device at full
  // overdrive: B2*(VDD-VT)^2 == B*(VDD-VT)^alpha.
  const double vov = in.vdd - in.vt;
  const double b2 = in.b * std::pow(vov, in.alpha - 2.0);
  const auto rhs = [&](double v) {
    const double ov = in.vdd - v - in.vt;
    return nl * in.slope * b2 * ov * ov / vov;
  };
  return solve_self_consistent(rhs, in.vdd, in.vt);
}

double vemuru_vmax(const BaselineInputs& in) {
  in.validate();
  const double nl = double(in.n_drivers) * in.inductance;
  const double vov = in.vdd - in.vt;
  const auto rhs = [&](double v) {
    const double gm = in.alpha * in.b * std::pow(in.vdd - v - in.vt, in.alpha - 1.0);
    const double tau = nl * gm;
    return tau * in.slope * (1.0 - std::exp(-vov / (in.slope * tau)));
  };
  return solve_self_consistent(rhs, in.vdd, in.vt);
}

double song_vmax(const BaselineInputs& in) {
  in.validate();
  const double nl = double(in.n_drivers) * in.inductance;
  const double vov = in.vdd - in.vt;
  const auto rhs = [&](double v) {
    const double gm = in.alpha * in.b * std::pow(in.vdd - v - in.vt, in.alpha - 1.0);
    return nl * gm * in.slope * (1.0 - v / vov);
  };
  return solve_self_consistent(rhs, in.vdd, in.vt);
}

}  // namespace ssnkit::core
