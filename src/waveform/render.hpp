// Waveform presentation adapters: terminal charts, gnuplot scripts, and CSV
// dumps of sampled waveforms. These sit in the waveform layer on purpose —
// the generic renderers in io know nothing about Waveform (io is below
// waveform in the include DAG, SSN-L010); this header adapts Waveforms onto
// io's point-series primitives.
#pragma once

#include "io/ascii_chart.hpp"
#include "io/gnuplot.hpp"
#include "waveform/waveform.hpp"

#include <iosfwd>
#include <string>
#include <vector>

namespace ssnkit::waveform {

/// Render one or more waveforms on a shared axis (resampled densely so the
/// lines look continuous). Each series is drawn with its own glyph and
/// listed in the legend with its name.
std::string ascii_chart(const std::vector<const Waveform*>& series,
                        const std::vector<std::string>& names,
                        const io::ChartOptions& opts = {});

/// Convenience overload for a single waveform.
std::string ascii_chart(const Waveform& wave, const io::ChartOptions& opts = {});

/// Write a gnuplot script plotting the given waveforms as lines.
void write_gnuplot_script(std::ostream& os,
                          const std::vector<const Waveform*>& series,
                          const std::vector<std::string>& names,
                          const io::GnuplotOptions& opts = {});

/// Dump one or more waveforms (sampled at the first waveform's times) as
/// time,name1,name2,... CSV.
void write_waveforms_csv(std::ostream& os,
                         const std::vector<std::string>& names,
                         const std::vector<const Waveform*>& waves);

}  // namespace ssnkit::waveform
