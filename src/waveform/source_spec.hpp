// Analytic source descriptions shared by the circuit simulator (independent
// V/I sources) and by the SSN scenario definitions (the paper's ramp input
// V_in = S·t). Each shape can report its breakpoints so the transient
// engine lands a time step exactly on every slope discontinuity.
#pragma once

#include <variant>
#include <vector>

namespace ssnkit::waveform {

/// Constant source.
struct Dc {
  double value = 0.0;
};

/// The paper's input: v(t) = v0 before t_start, then a linear ramp with
/// slope (v1-v0)/rise_time, then v1. slope() is the paper's S.
struct Ramp {
  double v0 = 0.0;
  double v1 = 1.0;
  double t_start = 0.0;
  double rise_time = 1e-9;  ///< must be > 0

  double slope() const { return (v1 - v0) / rise_time; }
  double t_end() const { return t_start + rise_time; }
};

/// SPICE-style PULSE(v0 v1 delay rise fall width period).
struct Pulse {
  double v0 = 0.0;
  double v1 = 1.0;
  double delay = 0.0;
  double rise = 1e-12;
  double fall = 1e-12;
  double width = 1e-9;
  double period = 2e-9;
};

/// Piecewise-linear source; points must have strictly increasing times.
struct Pwl {
  std::vector<std::pair<double, double>> points;  // (t, v)
};

/// v(t) = offset + amplitude * sin(2*pi*freq*(t-delay)) for t >= delay.
struct Sine {
  double offset = 0.0;
  double amplitude = 1.0;
  double frequency = 1e9;
  double delay = 0.0;
};

using SourceSpec = std::variant<Dc, Ramp, Pulse, Pwl, Sine>;

/// Value of the source at time t (t < 0 allowed; shapes clamp sensibly).
double source_value(const SourceSpec& spec, double t);

/// Times at which the source's derivative is discontinuous, within [t0, t1].
/// Periodic shapes enumerate every period inside the window.
std::vector<double> source_breakpoints(const SourceSpec& spec, double t0,
                                       double t1);

/// Validate invariants (rise_time > 0, PWL monotone, ...); throws
/// std::invalid_argument with a description when violated.
void validate(const SourceSpec& spec);

}  // namespace ssnkit::waveform
