// Sampled signal container. Both the transient simulator output and the
// closed-form model evaluations are materialized as Waveforms so they can
// be compared point-by-point.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

namespace ssnkit::waveform {

/// A piecewise-linear sampled signal v(t) with strictly increasing time
/// points. Sampling between points interpolates linearly; sampling outside
/// the span clamps to the end values.
class Waveform {
 public:
  Waveform() = default;
  /// Throws std::invalid_argument when sizes differ or time is not strictly
  /// increasing.
  Waveform(std::vector<double> times, std::vector<double> values);

  /// Sample a callable f(t) at `points` equidistant times on [t0, t1].
  static Waveform from_function(const std::function<double(double)>& f,
                                double t0, double t1, std::size_t points);

  std::size_t size() const { return times_.size(); }
  bool empty() const { return times_.empty(); }

  const std::vector<double>& times() const { return times_; }
  const std::vector<double>& values() const { return values_; }

  double time(std::size_t i) const { return times_[i]; }
  double value(std::size_t i) const { return values_[i]; }

  double t_begin() const;
  double t_end() const;

  /// Append a sample; t must be greater than the current last time.
  void append(double t, double v);

  /// Linear interpolation (clamped outside the span). Throws on empty.
  double sample(double t) const;

  /// Largest value and the time where it occurs.
  struct Extremum {
    double t = 0.0;
    double value = 0.0;
  };
  Extremum maximum() const;
  Extremum minimum() const;
  /// Maximum restricted to t in [t0, t1] (samples interpolated at the
  /// window edges are included).
  Extremum maximum_in(double t0, double t1) const;

  /// New waveform resampled at `points` equidistant times over the span.
  Waveform resampled(std::size_t points) const;
  /// New waveform sampled at the time points of `other` (clamped).
  Waveform resampled_like(const Waveform& other) const;
  /// Restrict to the window [t0, t1], interpolating the window edges.
  Waveform windowed(double t0, double t1) const;

  /// Pointwise combinations (rhs is sampled at this waveform's times).
  Waveform operator-(const Waveform& rhs) const;
  Waveform operator+(const Waveform& rhs) const;
  Waveform scaled(double s) const;
  Waveform shifted(double dv) const;

  /// Numerical time-derivative (central differences, one-sided at ends).
  Waveform derivative() const;
  /// Running trapezoidal integral starting at 0.
  Waveform integral() const;

 private:
  std::vector<double> times_;
  std::vector<double> values_;
};

}  // namespace ssnkit::waveform
