#include "waveform/metrics.hpp"

#include "support/contracts.hpp"

#include <cmath>
#include <stdexcept>

namespace ssnkit::waveform {

std::optional<double> first_rising_crossing(const Waveform& w, double level) {
  for (std::size_t i = 1; i < w.size(); ++i) {
    const double v0 = w.value(i - 1);
    const double v1 = w.value(i);
    if (v0 < level && v1 >= level) {
      const double frac = (level - v0) / (v1 - v0);
      return w.time(i - 1) + frac * (w.time(i) - w.time(i - 1));
    }
  }
  return std::nullopt;
}

std::optional<double> first_falling_crossing(const Waveform& w, double level) {
  for (std::size_t i = 1; i < w.size(); ++i) {
    const double v0 = w.value(i - 1);
    const double v1 = w.value(i);
    if (v0 > level && v1 <= level) {
      const double frac = (v0 - level) / (v0 - v1);
      return w.time(i - 1) + frac * (w.time(i) - w.time(i - 1));
    }
  }
  return std::nullopt;
}

std::vector<Waveform::Extremum> local_maxima(const Waveform& w) {
  std::vector<Waveform::Extremum> out;
  for (std::size_t i = 1; i + 1 < w.size(); ++i)
    if (w.value(i) > w.value(i - 1) && w.value(i) > w.value(i + 1))
      out.push_back({w.time(i), w.value(i)});
  return out;
}

double peak_to_peak(const Waveform& w) {
  return w.maximum().value - w.minimum().value;
}

WaveformError compare(const Waveform& model, const Waveform& reference) {
  SSN_REQUIRE(!model.empty() && !reference.empty(), "compare: empty waveform");
  return compare(model, reference,
                 std::max(model.t_begin(), reference.t_begin()),
                 std::min(model.t_end(), reference.t_end()));
}

WaveformError compare(const Waveform& model, const Waveform& reference,
                      double t0, double t1) {
  SSN_REQUIRE(!model.empty() && !reference.empty(), "compare: empty waveform");
  SSN_REQUIRE(t1 > t0, "compare: empty window");

  WaveformError err;
  double ref_peak = 0.0;
  double model_peak = 0.0;
  double sum_sq = 0.0;
  std::size_t count = 0;
  for (std::size_t i = 0; i < reference.size(); ++i) {
    const double t = reference.time(i);
    if (t < t0 || t > t1) continue;
    const double r = reference.value(i);
    const double m = model.sample(t);
    const double d = std::fabs(m - r);
    err.max_abs = std::max(err.max_abs, d);
    sum_sq += d * d;
    ++count;
    ref_peak = std::max(ref_peak, std::fabs(r));
    model_peak = std::max(model_peak, std::fabs(m));
  }
  SSN_REQUIRE(count > 0, "compare: no reference samples in window");
  err.rms_abs = std::sqrt(sum_sq / double(count));
  err.peak_rel =
      ref_peak > 0.0 ? std::fabs(model_peak - ref_peak) / ref_peak : 0.0;
  err.norm_max_abs = ref_peak > 0.0 ? err.max_abs / ref_peak : err.max_abs;
  return err;
}

}  // namespace ssnkit::waveform
