// Waveform comparison and measurement utilities: peak detection, threshold
// crossings, and the error metrics used to report model-vs-simulator
// agreement (the paper's "within 3% of HSPICE" claim).
#pragma once

#include "waveform/waveform.hpp"

#include <optional>
#include <vector>

namespace ssnkit::waveform {

/// First time the waveform crosses `level` going upward (value moves from
/// below to at-or-above), linearly interpolated. nullopt when never.
std::optional<double> first_rising_crossing(const Waveform& w, double level);

/// First time the waveform crosses `level` going downward.
std::optional<double> first_falling_crossing(const Waveform& w, double level);

/// All strict local maxima (interior samples larger than both neighbours).
std::vector<Waveform::Extremum> local_maxima(const Waveform& w);

/// Peak-to-peak amplitude.
double peak_to_peak(const Waveform& w);

/// Error metrics between a model waveform and a reference, evaluated at the
/// reference's time points inside the overlap window.
struct WaveformError {
  double max_abs = 0.0;        ///< max |model - ref|
  double rms_abs = 0.0;        ///< RMS of |model - ref|
  double peak_rel = 0.0;       ///< |max(model) - max(ref)| / |max(ref)|
  double norm_max_abs = 0.0;   ///< max_abs / max |ref|
};
WaveformError compare(const Waveform& model, const Waveform& reference);

/// Compare restricted to [t0, t1].
WaveformError compare(const Waveform& model, const Waveform& reference,
                      double t0, double t1);

}  // namespace ssnkit::waveform
