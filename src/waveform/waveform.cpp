#include "waveform/waveform.hpp"

#include "support/contracts.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace ssnkit::waveform {

Waveform::Waveform(std::vector<double> times, std::vector<double> values)
    : times_(std::move(times)), values_(std::move(values)) {
  SSN_REQUIRE(times_.size() == values_.size(),
              "Waveform: times/values size mismatch");
  for (std::size_t i = 1; i < times_.size(); ++i)
    SSN_REQUIRE(times_[i] > times_[i - 1],
                "Waveform: times must be strictly increasing");
}

Waveform Waveform::from_function(const std::function<double(double)>& f,
                                 double t0, double t1, std::size_t points) {
  SSN_REQUIRE(points >= 2, "Waveform::from_function: need >= 2 points");
  SSN_REQUIRE(t1 > t0, "Waveform::from_function: t1 must be > t0");
  std::vector<double> ts(points), vs(points);
  for (std::size_t i = 0; i < points; ++i) {
    const double t = t0 + (t1 - t0) * double(i) / double(points - 1);
    ts[i] = t;
    vs[i] = f(t);
  }
  return Waveform(std::move(ts), std::move(vs));
}

double Waveform::t_begin() const {
  if (empty()) throw std::runtime_error("Waveform::t_begin: empty waveform");
  return times_.front();
}

double Waveform::t_end() const {
  if (empty()) throw std::runtime_error("Waveform::t_end: empty waveform");
  return times_.back();
}

void Waveform::append(double t, double v) {
  SSN_REQUIRE(times_.empty() || t > times_.back(),
              "Waveform::append: time must increase");
  times_.push_back(t);
  values_.push_back(v);
}

double Waveform::sample(double t) const {
  if (empty()) throw std::runtime_error("Waveform::sample: empty waveform");
  if (t <= times_.front()) return values_.front();
  if (t >= times_.back()) return values_.back();
  const auto it = std::upper_bound(times_.begin(), times_.end(), t);
  const std::size_t hi = std::size_t(it - times_.begin());
  const std::size_t lo = hi - 1;
  const double span = times_[hi] - times_[lo];
  const double w = (t - times_[lo]) / span;
  return (1.0 - w) * values_[lo] + w * values_[hi];
}

Waveform::Extremum Waveform::maximum() const {
  if (empty()) throw std::runtime_error("Waveform::maximum: empty waveform");
  std::size_t best = 0;
  for (std::size_t i = 1; i < size(); ++i)
    if (values_[i] > values_[best]) best = i;
  return {times_[best], values_[best]};
}

Waveform::Extremum Waveform::minimum() const {
  if (empty()) throw std::runtime_error("Waveform::minimum: empty waveform");
  std::size_t best = 0;
  for (std::size_t i = 1; i < size(); ++i)
    if (values_[i] < values_[best]) best = i;
  return {times_[best], values_[best]};
}

Waveform::Extremum Waveform::maximum_in(double t0, double t1) const {
  if (t0 > t1) std::swap(t0, t1);
  Extremum best{t0, sample(t0)};
  const double at_t1 = sample(t1);
  if (at_t1 > best.value) best = {t1, at_t1};
  for (std::size_t i = 0; i < size(); ++i) {
    if (times_[i] < t0 || times_[i] > t1) continue;
    if (values_[i] > best.value) best = {times_[i], values_[i]};
  }
  return best;
}

Waveform Waveform::resampled(std::size_t points) const {
  return from_function([this](double t) { return sample(t); }, t_begin(), t_end(),
                       points);
}

Waveform Waveform::resampled_like(const Waveform& other) const {
  std::vector<double> ts = other.times_;
  std::vector<double> vs(ts.size());
  for (std::size_t i = 0; i < ts.size(); ++i) vs[i] = sample(ts[i]);
  return Waveform(std::move(ts), std::move(vs));
}

Waveform Waveform::windowed(double t0, double t1) const {
  if (t0 > t1) std::swap(t0, t1);
  Waveform out;
  out.append(t0, sample(t0));
  for (std::size_t i = 0; i < size(); ++i)
    if (times_[i] > t0 && times_[i] < t1) out.append(times_[i], values_[i]);
  if (t1 > out.t_end()) out.append(t1, sample(t1));
  return out;
}

Waveform Waveform::operator-(const Waveform& rhs) const {
  Waveform out = *this;
  for (std::size_t i = 0; i < out.size(); ++i)
    out.values_[i] -= rhs.sample(out.times_[i]);
  return out;
}

Waveform Waveform::operator+(const Waveform& rhs) const {
  Waveform out = *this;
  for (std::size_t i = 0; i < out.size(); ++i)
    out.values_[i] += rhs.sample(out.times_[i]);
  return out;
}

Waveform Waveform::scaled(double s) const {
  Waveform out = *this;
  for (double& v : out.values_) v *= s;
  return out;
}

Waveform Waveform::shifted(double dv) const {
  Waveform out = *this;
  for (double& v : out.values_) v += dv;
  return out;
}

Waveform Waveform::derivative() const {
  if (size() < 2) throw std::runtime_error("Waveform::derivative: need >= 2 points");
  Waveform out = *this;
  const std::size_t n = size();
  out.values_[0] = (values_[1] - values_[0]) / (times_[1] - times_[0]);
  out.values_[n - 1] =
      (values_[n - 1] - values_[n - 2]) / (times_[n - 1] - times_[n - 2]);
  for (std::size_t i = 1; i + 1 < n; ++i)
    out.values_[i] = (values_[i + 1] - values_[i - 1]) / (times_[i + 1] - times_[i - 1]);
  return out;
}

Waveform Waveform::integral() const {
  if (empty()) throw std::runtime_error("Waveform::integral: empty waveform");
  Waveform out = *this;
  double acc = 0.0;
  out.values_[0] = 0.0;
  for (std::size_t i = 1; i < size(); ++i) {
    acc += 0.5 * (values_[i] + values_[i - 1]) * (times_[i] - times_[i - 1]);
    out.values_[i] = acc;
  }
  return out;
}

}  // namespace ssnkit::waveform
