#include "waveform/source_spec.hpp"

#include "support/contracts.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>

namespace ssnkit::waveform {

namespace {

double pulse_value(const Pulse& p, double t) {
  if (t < p.delay) return p.v0;
  const double tp = std::fmod(t - p.delay, p.period);
  if (tp < p.rise) return p.v0 + (p.v1 - p.v0) * tp / p.rise;
  if (tp < p.rise + p.width) return p.v1;
  if (tp < p.rise + p.width + p.fall)
    return p.v1 + (p.v0 - p.v1) * (tp - p.rise - p.width) / p.fall;
  return p.v0;
}

double pwl_value(const Pwl& p, double t) {
  if (p.points.empty()) return 0.0;
  if (t <= p.points.front().first) return p.points.front().second;
  if (t >= p.points.back().first) return p.points.back().second;
  for (std::size_t i = 1; i < p.points.size(); ++i) {
    if (t <= p.points[i].first) {
      const auto& [t0, v0] = p.points[i - 1];
      const auto& [t1, v1] = p.points[i];
      const double w = (t - t0) / (t1 - t0);
      return (1.0 - w) * v0 + w * v1;
    }
  }
  return p.points.back().second;
}

}  // namespace

double source_value(const SourceSpec& spec, double t) {
  return std::visit(
      [t](const auto& s) -> double {
        using T = std::decay_t<decltype(s)>;
        if constexpr (std::is_same_v<T, Dc>) {
          return s.value;
        } else if constexpr (std::is_same_v<T, Ramp>) {
          if (t <= s.t_start) return s.v0;
          if (t >= s.t_end()) return s.v1;
          return s.v0 + s.slope() * (t - s.t_start);
        } else if constexpr (std::is_same_v<T, Pulse>) {
          return pulse_value(s, t);
        } else if constexpr (std::is_same_v<T, Pwl>) {
          return pwl_value(s, t);
        } else {
          static_assert(std::is_same_v<T, Sine>);
          if (t < s.delay) return s.offset;
          return s.offset + s.amplitude * std::sin(2.0 * std::numbers::pi *
                                                   s.frequency * (t - s.delay));
        }
      },
      spec);
}

std::vector<double> source_breakpoints(const SourceSpec& spec, double t0,
                                       double t1) {
  std::vector<double> bps;
  std::visit(
      [&](const auto& s) {
        using T = std::decay_t<decltype(s)>;
        if constexpr (std::is_same_v<T, Ramp>) {
          bps.push_back(s.t_start);
          bps.push_back(s.t_end());
        } else if constexpr (std::is_same_v<T, Pulse>) {
          for (double base = s.delay; base <= t1; base += s.period) {
            bps.push_back(base);
            bps.push_back(base + s.rise);
            bps.push_back(base + s.rise + s.width);
            bps.push_back(base + s.rise + s.width + s.fall);
            if (s.period <= 0.0) break;
          }
        } else if constexpr (std::is_same_v<T, Pwl>) {
          for (const auto& [t, v] : s.points) bps.push_back(t);
        } else if constexpr (std::is_same_v<T, Sine>) {
          bps.push_back(s.delay);
        }
        // Dc: no breakpoints.
      },
      spec);
  std::erase_if(bps, [&](double t) { return t < t0 || t > t1; });
  std::sort(bps.begin(), bps.end());
  bps.erase(std::unique(bps.begin(), bps.end()), bps.end());
  return bps;
}

void validate(const SourceSpec& spec) {
  std::visit(
      [](const auto& s) {
        using T = std::decay_t<decltype(s)>;
        if constexpr (std::is_same_v<T, Ramp>) {
          SSN_REQUIRE(s.rise_time > 0.0, "Ramp: rise_time must be > 0");
        } else if constexpr (std::is_same_v<T, Pulse>) {
          SSN_REQUIRE(s.rise > 0.0 && s.fall > 0.0,
                      "Pulse: rise/fall must be > 0");
          SSN_REQUIRE(s.period >= s.rise + s.width + s.fall,
                      "Pulse: period shorter than rise+width+fall");
        } else if constexpr (std::is_same_v<T, Pwl>) {
          for (std::size_t i = 1; i < s.points.size(); ++i)
            SSN_REQUIRE(s.points[i].first > s.points[i - 1].first,
                        "Pwl: times must be strictly increasing");
        } else if constexpr (std::is_same_v<T, Sine>) {
          SSN_REQUIRE(s.frequency > 0.0, "Sine: frequency must be > 0");
        }
      },
      spec);
}

}  // namespace ssnkit::waveform
