#include "waveform/render.hpp"

#include "support/atomic_file.hpp"

#include <algorithm>
#include <ostream>
#include <stdexcept>
#include <utility>

namespace ssnkit::waveform {

namespace {

/// Resample each waveform densely over its own span so chart lines look
/// continuous at any terminal width.
std::vector<std::vector<std::pair<double, double>>> dense_points(
    const std::vector<const Waveform*>& series, int width) {
  std::vector<std::vector<std::pair<double, double>>> pts;
  for (const auto* wv : series) {
    if (wv == nullptr || wv->empty())
      throw std::invalid_argument("ascii_chart: null/empty waveform");
    std::vector<std::pair<double, double>> p;
    const int n = std::max(width, 16) * 2;
    for (int i = 0; i < n; ++i) {
      const double t = wv->t_begin() +
                       (wv->t_end() - wv->t_begin()) * double(i) / double(n - 1);
      p.emplace_back(t, wv->sample(t));
    }
    pts.push_back(std::move(p));
  }
  return pts;
}

}  // namespace

std::string ascii_chart(const std::vector<const Waveform*>& series,
                        const std::vector<std::string>& names,
                        const io::ChartOptions& opts) {
  if (series.empty()) throw std::invalid_argument("ascii_chart: no series");
  return io::ascii_series_chart(dense_points(series, opts.width), names, opts);
}

std::string ascii_chart(const Waveform& wave, const io::ChartOptions& opts) {
  return ascii_chart({&wave}, {opts.y_label}, opts);
}

void write_gnuplot_script(std::ostream& os,
                          const std::vector<const Waveform*>& series,
                          const std::vector<std::string>& names,
                          const io::GnuplotOptions& opts) {
  std::vector<std::vector<std::pair<double, double>>> pts;
  for (const auto* wv : series) {
    if (wv == nullptr)
      throw std::invalid_argument("write_gnuplot_script: null series");
    std::vector<std::pair<double, double>> p;
    for (std::size_t i = 0; i < wv->size(); ++i)
      p.emplace_back(wv->time(i), wv->value(i));
    pts.push_back(std::move(p));
  }
  io::write_gnuplot_series_script(os, pts, names, opts);
}

void write_waveforms_csv(std::ostream& os, const std::vector<std::string>& names,
                         const std::vector<const Waveform*>& waves) {
  if (names.size() != waves.size())
    throw std::invalid_argument("write_waveforms_csv: names/waves mismatch");
  if (waves.empty() || waves[0] == nullptr || waves[0]->empty())
    throw std::invalid_argument(
        "write_waveforms_csv: need a non-empty lead waveform");
  os << "time";
  for (const auto& n : names) os << ',' << n;
  os << '\n';
  os.precision(12);
  for (std::size_t i = 0; i < waves[0]->size(); ++i) {
    const double t = waves[0]->time(i);
    os << t;
    for (const auto* w : waves) os << ',' << w->sample(t);
    os << '\n';
  }
  if (!os)
    throw support::IoError(support::IoError::Kind::kWriteFailed, "<stream>",
                           "stream entered a failed state while writing "
                           "waveforms");
}

}  // namespace ssnkit::waveform
