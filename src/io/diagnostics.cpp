#include "io/diagnostics.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <limits>

namespace ssnkit::io {

namespace {

/// Cap a rendered excerpt so a pathological multi-kilobyte line cannot blow
/// up every diagnostic that points into it. The window is recentred around
/// `column` (1-based) when the line is longer than the cap; `column` is
/// rewritten to the position inside the returned window.
constexpr std::size_t kMaxExcerpt = 120;

std::string window_excerpt(const std::string& line, int& column) {
  if (line.size() <= kMaxExcerpt) return line;
  const std::size_t col = column > 0 ? std::size_t(column - 1) : 0;
  std::size_t begin = 0;
  if (col > kMaxExcerpt / 2) begin = col - kMaxExcerpt / 2;
  if (begin + kMaxExcerpt > line.size()) begin = line.size() - kMaxExcerpt;
  std::string out = line.substr(begin, kMaxExcerpt);
  if (begin > 0) {
    out = "..." + out.substr(3);
  }
  if (begin + kMaxExcerpt < line.size()) {
    out = out.substr(0, out.size() - 3) + "...";
  }
  if (column > 0) column = int(col - begin) + 1;
  return out;
}

}  // namespace

std::string Diagnostic::format() const {
  std::string s = loc.to_string();
  s += ": ";
  s += io::to_string(severity);
  s += ": ";
  s += message;
  if (!code.empty()) {
    s += " [";
    s += code;
    s += ']';
  }
  if (!excerpt.empty()) {
    int col = loc.column;
    const std::string shown = window_excerpt(excerpt, col);
    s += "\n  ";
    // Make control characters printable so binary garbage in the input
    // cannot corrupt the terminal.
    for (char c : shown)
      s += (c == '\t') ? c
                       : (std::isprint(static_cast<unsigned char>(c)) ? c : '?');
    if (col > 0 && std::size_t(col) <= shown.size() + 1) {
      s += "\n  ";
      for (int i = 0; i + 1 < col; ++i)
        s += (shown[std::size_t(i)] == '\t') ? '\t' : ' ';
      s += '^';
      std::size_t underline = token.empty() ? 1 : token.size();
      const std::size_t room =
          shown.size() >= std::size_t(col) ? shown.size() - std::size_t(col) + 1
                                           : 1;
      underline = std::max<std::size_t>(1, std::min(underline, room));
      s.append(underline - 1, '~');
    }
  }
  return s;
}

bool DiagnosticSink::add(Diagnostic d) {
  if (d.severity == Severity::kError && error_count_ >= max_errors_) {
    if (!overflowed_) {
      overflowed_ = true;
      diags_.push_back({Severity::kNote, d.loc, "SSN-E031",
                        "too many errors (" + std::to_string(max_errors_) +
                            "); further errors suppressed",
                        {},
                        {}});
    }
    return false;
  }
  const std::string key = d.loc.to_string() + '\x1f' + d.code + '\x1f' +
                          d.message;
  if (!seen_keys_.insert(key).second) return false;
  if (d.severity == Severity::kError) ++error_count_;
  if (d.severity == Severity::kWarning) ++warning_count_;
  diags_.push_back(std::move(d));
  return true;
}

void DiagnosticSink::error(support::SrcLoc loc, std::string code,
                           std::string message, std::string token,
                           std::string excerpt) {
  add({Severity::kError, std::move(loc), std::move(code), std::move(message),
       std::move(token), std::move(excerpt)});
}

void DiagnosticSink::warning(support::SrcLoc loc, std::string code,
                             std::string message, std::string token,
                             std::string excerpt) {
  add({Severity::kWarning, std::move(loc), std::move(code), std::move(message),
       std::move(token), std::move(excerpt)});
}

void DiagnosticSink::note(support::SrcLoc loc, std::string code,
                          std::string message, std::string token,
                          std::string excerpt) {
  add({Severity::kNote, std::move(loc), std::move(code), std::move(message),
       std::move(token), std::move(excerpt)});
}

std::string DiagnosticSink::format_all() const {
  std::string s;
  for (const Diagnostic& d : diags_) {
    s += d.format();
    s += '\n';
  }
  s += std::to_string(error_count_) + " error" +
       (error_count_ == 1 ? "" : "s") + ", " + std::to_string(warning_count_) +
       " warning" + (warning_count_ == 1 ? "" : "s");
  return s;
}

namespace {

std::string parse_error_what(const std::vector<Diagnostic>& diags) {
  std::size_t errors = 0, warnings = 0;
  std::string s;
  for (const Diagnostic& d : diags) {
    if (d.severity == Severity::kError) ++errors;
    if (d.severity == Severity::kWarning) ++warnings;
    s += d.format();
    s += '\n';
  }
  s += std::to_string(errors) + " error" + (errors == 1 ? "" : "s") + ", " +
       std::to_string(warnings) + " warning" + (warnings == 1 ? "" : "s");
  return s;
}

}  // namespace

ParseError::ParseError(const DiagnosticSink& sink)
    : ParseError(sink.diagnostics()) {}

ParseError::ParseError(std::vector<Diagnostic> diagnostics)
    : std::invalid_argument(parse_error_what(diagnostics)),
      diagnostics_(std::move(diagnostics)) {}

// ---------------------------------------------------------------------------
// Hardened numeric parsing.
// ---------------------------------------------------------------------------

NumberParse parse_double_prefix(const std::string& token) {
  NumberParse out;
  // Scan the strictly-decimal prefix by hand so std::stod never sees the
  // forms it would happily accept: "inf", "nan", "0x1p3", leading blanks.
  std::size_t i = 0;
  const std::size_t n = token.size();
  const auto digit = [&](std::size_t k) {
    return k < n && std::isdigit(static_cast<unsigned char>(token[k])) != 0;
  };
  if (i < n && (token[i] == '+' || token[i] == '-')) ++i;
  const std::size_t mantissa_start = i;
  while (digit(i)) ++i;
  if (i < n && token[i] == '.') {
    ++i;
    while (digit(i)) ++i;
  }
  if (i == mantissa_start || (i == mantissa_start + 1 && token[mantissa_start] == '.')) {
    out.error = "not a decimal number";
    return out;
  }
  if (i < n && (token[i] == 'e' || token[i] == 'E')) {
    // Only consume the exponent when it is well-formed; otherwise the 'e'
    // is a (bad) unit suffix and stays with the caller.
    std::size_t j = i + 1;
    if (j < n && (token[j] == '+' || token[j] == '-')) ++j;
    if (digit(j)) {
      while (digit(j)) ++j;
      i = j;
    }
  }
  const std::string prefix = token.substr(0, i);
  try {
    std::size_t pos = 0;
    out.value = std::stod(prefix, &pos);  // ssnlint-ignore(SSN-L007)
    if (pos != prefix.size()) {
      out.error = "not a decimal number";
      return out;
    }
  } catch (const std::out_of_range&) {
    out.error = "number out of range for a double ('" + prefix + "')";
    return out;
  } catch (const std::invalid_argument&) {
    out.error = "not a decimal number";
    return out;
  }
  if (!std::isfinite(out.value)) {
    out.error = "non-finite value ('" + prefix + "')";
    return out;
  }
  out.ok = true;
  out.consumed = i;
  return out;
}

IntParse parse_int_strict(const std::string& token) {
  IntParse out;
  std::size_t i = 0;
  const std::size_t n = token.size();
  if (i < n && (token[i] == '+' || token[i] == '-')) ++i;
  const std::size_t first_digit = i;
  while (i < n && std::isdigit(static_cast<unsigned char>(token[i])) != 0) ++i;
  if (i == first_digit || i != n) {
    out.error = "not an integer";
    return out;
  }
  try {
    std::size_t pos = 0;
    const long long v = std::stoll(token, &pos);  // ssnlint-ignore(SSN-L007)
    if (pos != token.size()) {
      out.error = "not an integer";
      return out;
    }
    if (v > std::numeric_limits<int>::max() ||
        v < std::numeric_limits<int>::min()) {
      out.error = "integer out of range";
      return out;
    }
    out.value = static_cast<int>(v);
  } catch (const std::out_of_range&) {
    out.error = "integer out of range";
    return out;
  } catch (const std::invalid_argument&) {
    out.error = "not an integer";
    return out;
  }
  out.ok = true;
  return out;
}

}  // namespace ssnkit::io
