#include "io/csv.hpp"

#include "support/atomic_file.hpp"

#include <cmath>
#include <fstream>
#include <ostream>
#include <set>
#include <sstream>
#include <stdexcept>

namespace ssnkit::io {

CsvWriter::CsvWriter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  if (headers_.empty()) throw std::invalid_argument("CsvWriter: no headers");
}

void CsvWriter::add_row(const std::vector<double>& row) {
  if (row.size() != headers_.size())
    throw std::invalid_argument("CsvWriter::add_row: width mismatch");
  rows_.push_back(row);
}

void CsvWriter::write(std::ostream& os) const {
  for (std::size_t i = 0; i < headers_.size(); ++i) {
    if (i) os << ',';
    os << headers_[i];
  }
  os << '\n';
  os.precision(12);
  for (const auto& row : rows_) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i) os << ',';
      os << row[i];
    }
    os << '\n';
  }
  if (!os)
    throw IoError(IoError::Kind::kWriteFailed, "<stream>",
                  "stream entered a failed state while writing " +
                      std::to_string(rows_.size()) + " CSV rows");
}

void CsvWriter::write_file(const std::string& path) const {
  // Render fully in memory, then publish atomically: a reader (or a crash)
  // never observes a half-written CSV, and an interrupted batch that
  // rewrites its output file cannot truncate a previous good version.
  std::ostringstream buffer;
  write(buffer);
  support::write_file_atomic(path, buffer.str());
}

// ---------------------------------------------------------------------------
// CsvReader
// ---------------------------------------------------------------------------

namespace {

/// Abort-class guard violation (mirrors the netlist parser's AbortParse).
struct AbortRead {};

std::string trimmed(const std::string& s, std::size_t* lead = nullptr) {
  std::size_t b = s.find_first_not_of(" \t");
  if (b == std::string::npos) {
    if (lead) *lead = s.size();
    return {};
  }
  const std::size_t e = s.find_last_not_of(" \t");
  if (lead) *lead = b;
  return s.substr(b, e - b + 1);
}

}  // namespace

CsvReader::Table CsvReader::read(std::istream& is, DiagnosticSink& sink,
                                 const std::string& filename) const {
  Table table;
  std::size_t total_bytes = 0;
  int line_no = 0;
  bool header_seen = false;

  const auto loc = [&](int col) {
    return support::SrcLoc{filename, line_no, col};
  };
  const auto guard = [&](const std::string& msg, int col,
                         const std::string& excerpt) {
    sink.error(loc(col), "SSN-E030", msg, {}, excerpt);
    throw AbortRead{};
  };

  // Split a raw line at commas, reporting each field with its 1-based
  // starting column. Recoverable errors throw AbortField.
  struct Field {
    std::string text;
    int col = 0;
  };
  const auto split = [&](const std::string& raw) {
    std::vector<Field> fields;
    std::size_t start = 0;
    while (true) {
      const std::size_t comma = raw.find(',', start);
      const std::size_t end = comma == std::string::npos ? raw.size() : comma;
      std::size_t lead = 0;
      std::string cell = trimmed(raw.substr(start, end - start), &lead);
      fields.push_back({std::move(cell), int(start + lead) + 1});
      if (comma == std::string::npos) break;
      start = comma + 1;
    }
    if (fields.size() > limits_.max_columns)
      guard("row has " + std::to_string(fields.size()) +
                " columns, over the " + std::to_string(limits_.max_columns) +
                " limit",
            1, raw);
    return fields;
  };

  std::string raw;
  try {
    while (std::getline(is, raw)) {
      ++line_no;
      if (!raw.empty() && raw.back() == '\r') raw.pop_back();
      total_bytes += raw.size() + 1;
      if (total_bytes > limits_.max_input_bytes)
        guard("input exceeds the " + std::to_string(limits_.max_input_bytes) +
                  " byte limit",
              0, {});
      if (raw.size() > limits_.max_line_length)
        guard("line is " + std::to_string(raw.size()) +
                  " characters, over the " +
                  std::to_string(limits_.max_line_length) + " limit",
              0, {});
      if (trimmed(raw).empty()) continue;  // blank lines are tolerated

      const auto quote = raw.find('"');
      if (quote != std::string::npos) {
        sink.error(loc(int(quote) + 1), "SSN-E060",
                   "quoted fields are not supported (the writer never "
                   "produces them)",
                   "\"", raw);
        if (sink.overflowed()) throw AbortRead{};
        continue;
      }

      const auto fields = split(raw);

      if (!header_seen) {
        header_seen = true;
        std::set<std::string> names;
        bool ok = true;
        for (const Field& f : fields) {
          if (f.text.empty()) {
            sink.error(loc(f.col), "SSN-E060", "empty column name in header",
                       {}, raw);
            ok = false;
          } else if (!names.insert(f.text).second) {
            sink.warning(loc(f.col), "SSN-W107",
                         "duplicate column name '" + f.text + "'", f.text,
                         raw);
          }
        }
        if (sink.overflowed()) throw AbortRead{};
        if (ok)
          for (const Field& f : fields) table.headers.push_back(f.text);
        continue;
      }

      bool row_ok = true;
      if (fields.size() != table.headers.size()) {
        sink.error(loc(1), "SSN-E062",
                   "row has " + std::to_string(fields.size()) +
                       " fields, header has " +
                       std::to_string(table.headers.size()),
                   {}, raw);
        row_ok = false;
      }
      std::vector<double> row;
      row.reserve(fields.size());
      for (const Field& f : fields) {
        if (f.text.empty()) {
          sink.error(loc(f.col), "SSN-E060", "empty field", {}, raw);
          row_ok = false;
          continue;
        }
        const NumberParse p = parse_double_prefix(f.text);
        if (!p.ok || p.consumed != f.text.size()) {
          sink.error(loc(f.col), "SSN-E061",
                     "field '" + f.text + "' is not a decimal number" +
                         (p.ok ? "" : ": " + p.error),
                     f.text, raw);
          row_ok = false;
          continue;
        }
        row.push_back(p.value);
      }
      if (sink.overflowed()) throw AbortRead{};
      if (row_ok) table.rows.push_back(std::move(row));
    }
  } catch (const AbortRead&) {
    // Guard diagnostic is already in the sink; return the partial table.
  }
  if (!header_seen)
    sink.error(support::SrcLoc{filename, 0, 0}, "SSN-E060",
               "input has no header row");
  return table;
}

CsvReader::Table CsvReader::read_string(const std::string& text,
                                        DiagnosticSink& sink,
                                        const std::string& filename) const {
  std::istringstream iss(text);
  return read(iss, sink, filename);
}

CsvReader::Table CsvReader::read_file(const std::string& path) const {
  std::ifstream in(path);
  if (!in)
    throw IoError(IoError::Kind::kOpenFailed, path, "cannot open for reading");
  DiagnosticSink sink(limits_.max_errors);
  Table table = read(in, sink, path);
  if (in.bad())
    throw IoError(IoError::Kind::kReadFailed, path, "stream failed mid-read");
  if (sink.has_errors()) throw ParseError(sink);
  return table;
}


}  // namespace ssnkit::io
