#include "io/csv.hpp"

#include <fstream>
#include <ostream>
#include <stdexcept>

namespace ssnkit::io {

CsvWriter::CsvWriter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  if (headers_.empty()) throw std::invalid_argument("CsvWriter: no headers");
}

void CsvWriter::add_row(const std::vector<double>& row) {
  if (row.size() != headers_.size())
    throw std::invalid_argument("CsvWriter::add_row: width mismatch");
  rows_.push_back(row);
}

void CsvWriter::write(std::ostream& os) const {
  for (std::size_t i = 0; i < headers_.size(); ++i) {
    if (i) os << ',';
    os << headers_[i];
  }
  os << '\n';
  os.precision(12);
  for (const auto& row : rows_) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i) os << ',';
      os << row[i];
    }
    os << '\n';
  }
}

void CsvWriter::write_file(const std::string& path) const {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("CsvWriter: cannot open '" + path + "'");
  write(out);
}

void write_waveforms_csv(std::ostream& os, const std::vector<std::string>& names,
                         const std::vector<const waveform::Waveform*>& waves) {
  if (names.size() != waves.size())
    throw std::invalid_argument("write_waveforms_csv: names/waves mismatch");
  if (waves.empty() || waves[0] == nullptr || waves[0]->empty())
    throw std::invalid_argument("write_waveforms_csv: need a non-empty lead waveform");
  os << "time";
  for (const auto& n : names) os << ',' << n;
  os << '\n';
  os.precision(12);
  for (std::size_t i = 0; i < waves[0]->size(); ++i) {
    const double t = waves[0]->time(i);
    os << t;
    for (const auto* w : waves) os << ',' << w->sample(t);
    os << '\n';
  }
}

}  // namespace ssnkit::io
