// CSV output for sweep results and waveforms, so the bench harness data can
// be re-plotted with any external tool — plus the round-trip reader, so
// previously written sweeps can be loaded back (and so the fuzzer has a
// second text-input boundary to lean on).
#pragma once

#include "io/diagnostics.hpp"

#include <iosfwd>
#include <string>
#include <vector>

namespace ssnkit::io {

/// Column-oriented CSV writer: set headers once, append rows.
class CsvWriter {
 public:
  explicit CsvWriter(std::vector<std::string> headers);

  std::size_t column_count() const { return headers_.size(); }
  std::size_t row_count() const { return rows_.size(); }

  /// Throws std::invalid_argument when the row width mismatches.
  void add_row(const std::vector<double>& row);

  /// Throws IoError{kWriteFailed} when the stream enters a failed state
  /// (disk full, broken pipe) — a short CSV must never pass silently.
  void write(std::ostream& os) const;
  /// Throws IoError{kOpenFailed} when the file cannot be created and
  /// IoError{kWriteFailed} when flushing the bytes out fails.
  void write_file(const std::string& path) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<double>> rows_;
};

/// Resource guards for CsvReader (violations are SSN-E030 and abort the
/// read — same contract as circuit::ParseLimits).
struct CsvLimits {
  std::size_t max_input_bytes = 64u << 20;  ///< whole-file cap (64 MiB)
  std::size_t max_line_length = 1u << 16;   ///< longest raw line
  std::size_t max_columns = 4096;
  std::size_t max_errors = 64;
};

/// Round-trip counterpart of CsvWriter: a header line of column names, then
/// numeric rows. Strict by design — no quoting, no empty fields, decimal
/// numbers only (the writer never produces anything else) — and it runs in
/// error-recovery mode: every malformed cell in the file is diagnosed with
/// line/column in one pass.
///
/// Diagnostic codes:
///   SSN-E060  structural error (empty header, '"' seen, empty field)
///   SSN-E061  field is not a finite decimal number
///   SSN-E062  row width does not match the header
///   SSN-E030  resource guard (input size, line length, column count)
///   SSN-W107  duplicate column name
class CsvReader {
 public:
  struct Table {
    std::vector<std::string> headers;
    std::vector<std::vector<double>> rows;
  };

  explicit CsvReader(CsvLimits limits = {}) : limits_(limits) {}

  /// Error-recovery read: never throws; malformed rows are skipped and
  /// diagnosed in `sink`. The returned table holds every clean row (it is
  /// only trustworthy when !sink.has_errors()).
  Table read(std::istream& is, DiagnosticSink& sink,
             const std::string& filename = "<csv>") const;
  Table read_string(const std::string& text, DiagnosticSink& sink,
                    const std::string& filename = "<string>") const;

  /// Throwing convenience: IoError{kOpenFailed} when the file cannot be
  /// read, ParseError carrying every diagnostic when the content is bad.
  Table read_file(const std::string& path) const;

 private:
  CsvLimits limits_;
};

}  // namespace ssnkit::io
