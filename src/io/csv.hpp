// CSV output for sweep results and waveforms, so the bench harness data can
// be re-plotted with any external tool.
#pragma once

#include "waveform/waveform.hpp"

#include <iosfwd>
#include <string>
#include <vector>

namespace ssnkit::io {

/// Column-oriented CSV writer: set headers once, append rows.
class CsvWriter {
 public:
  explicit CsvWriter(std::vector<std::string> headers);

  std::size_t column_count() const { return headers_.size(); }
  std::size_t row_count() const { return rows_.size(); }

  /// Throws std::invalid_argument when the row width mismatches.
  void add_row(const std::vector<double>& row);

  void write(std::ostream& os) const;
  /// Throws std::runtime_error when the file cannot be created.
  void write_file(const std::string& path) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<double>> rows_;
};

/// Dump one or more waveforms (sampled at the first waveform's times) as
/// time,name1,name2,... CSV.
void write_waveforms_csv(std::ostream& os,
                         const std::vector<std::string>& names,
                         const std::vector<const waveform::Waveform*>& waves);

}  // namespace ssnkit::io
