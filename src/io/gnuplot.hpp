// Emit self-contained gnuplot scripts (data inlined via heredoc blocks) so
// every bench figure can be turned into a real plot offline. Like the ascii
// charts, this layer consumes plain point series; the Waveform adapters
// live in waveform/render.hpp (SSN-L010 layering).
#pragma once

#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

namespace ssnkit::io {

struct GnuplotOptions {
  std::string title;
  std::string x_label = "t [s]";
  std::string y_label = "V [V]";
  std::string terminal = "pngcairo size 900,600";
  std::string output;  ///< output file for the terminal; empty = interactive
};

/// Write a script plotting the given point series as lines.
void write_gnuplot_series_script(
    std::ostream& os,
    const std::vector<std::vector<std::pair<double, double>>>& series,
    const std::vector<std::string>& names, const GnuplotOptions& opts = {});

/// Write a script plotting y-columns against an x vector (sweep results).
void write_gnuplot_xy_script(std::ostream& os, const std::vector<double>& x,
                             const std::vector<std::vector<double>>& ys,
                             const std::vector<std::string>& names,
                             const GnuplotOptions& opts = {});

}  // namespace ssnkit::io
