// Emit self-contained gnuplot scripts (data inlined via heredoc blocks) so
// every bench figure can be turned into a real plot offline.
#pragma once

#include "waveform/waveform.hpp"

#include <iosfwd>
#include <string>
#include <vector>

namespace ssnkit::io {

struct GnuplotOptions {
  std::string title;
  std::string x_label = "t [s]";
  std::string y_label = "V [V]";
  std::string terminal = "pngcairo size 900,600";
  std::string output;  ///< output file for the terminal; empty = interactive
};

/// Write a script plotting the given waveforms as lines.
void write_gnuplot_script(std::ostream& os,
                          const std::vector<const waveform::Waveform*>& series,
                          const std::vector<std::string>& names,
                          const GnuplotOptions& opts = {});

/// Write a script plotting y-columns against an x vector (sweep results).
void write_gnuplot_xy_script(std::ostream& os, const std::vector<double>& x,
                             const std::vector<std::vector<double>>& ys,
                             const std::vector<std::string>& names,
                             const GnuplotOptions& opts = {});

}  // namespace ssnkit::io
