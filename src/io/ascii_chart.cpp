#include "io/ascii_chart.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <sstream>
#include <stdexcept>

namespace ssnkit::io {

namespace {

constexpr char kGlyphs[] = {'*', '+', 'o', 'x', '#', '@'};

}  // namespace

std::string ascii_series_chart(
    const std::vector<std::vector<std::pair<double, double>>>& series,
    const std::vector<std::string>& names, const ChartOptions& opts) {
  if (series.empty()) throw std::invalid_argument("ascii_chart: no series");
  if (series.size() != names.size())
    throw std::invalid_argument("ascii_chart: names/series mismatch");
  const int w = std::max(opts.width, 16);
  const int h = std::max(opts.height, 6);

  double xmin = std::numeric_limits<double>::infinity(), xmax = -xmin;
  double ymin = xmin, ymax = -xmin;
  for (const auto& s : series)
    for (const auto& [x, y] : s) {
      xmin = std::min(xmin, x);
      xmax = std::max(xmax, x);
      ymin = std::min(ymin, y);
      ymax = std::max(ymax, y);
    }
  if (!(xmax > xmin)) xmax = xmin + 1.0;
  if (!(ymax > ymin)) {
    ymax = ymin + 1.0;
    ymin -= 1.0;
  }
  // Pad the y range slightly so extrema are not drawn on the frame.
  const double ypad = 0.05 * (ymax - ymin);
  ymin -= ypad;
  ymax += ypad;

  std::vector<std::string> grid(std::size_t(h), std::string(std::size_t(w), ' '));
  for (std::size_t s = 0; s < series.size(); ++s) {
    const char glyph = kGlyphs[s % sizeof(kGlyphs)];
    for (const auto& [x, y] : series[s]) {
      const int col = int(std::lround((x - xmin) / (xmax - xmin) * (w - 1)));
      const int row = int(std::lround((ymax - y) / (ymax - ymin) * (h - 1)));
      if (col >= 0 && col < w && row >= 0 && row < h)
        grid[std::size_t(row)][std::size_t(col)] = glyph;
    }
  }

  std::ostringstream os;
  if (!opts.title.empty()) os << "  " << opts.title << '\n';
  char buf[64];
  for (int r = 0; r < h; ++r) {
    if (r == 0)
      std::snprintf(buf, sizeof buf, "%10.3g |", ymax);
    else if (r == h - 1)
      std::snprintf(buf, sizeof buf, "%10.3g |", ymin);
    else
      std::snprintf(buf, sizeof buf, "%10s |", "");
    os << buf << grid[std::size_t(r)] << '\n';
  }
  os << std::string(11, ' ') << '+' << std::string(std::size_t(w), '-') << '\n';
  std::snprintf(buf, sizeof buf, "%.3g", xmin);
  std::string footer = std::string(12, ' ') + buf;
  std::snprintf(buf, sizeof buf, "%.3g", xmax);
  const std::string xmax_s = buf;
  if (footer.size() + xmax_s.size() + 1 < std::size_t(w) + 12)
    footer += std::string(std::size_t(w) + 12 - footer.size() - xmax_s.size(), ' ') +
              xmax_s;
  os << footer << "  [" << opts.x_label << "]\n";
  os << "  legend:";
  for (std::size_t s = 0; s < names.size(); ++s)
    os << "  " << kGlyphs[s % sizeof(kGlyphs)] << " = " << names[s];
  os << "   [" << opts.y_label << "]\n";
  return os.str();
}

std::string ascii_xy_chart(const std::vector<double>& x,
                           const std::vector<std::vector<double>>& ys,
                           const std::vector<std::string>& names,
                           const ChartOptions& opts) {
  std::vector<std::vector<std::pair<double, double>>> pts;
  for (const auto& y : ys) {
    if (y.size() != x.size())
      throw std::invalid_argument("ascii_xy_chart: series length mismatch");
    std::vector<std::pair<double, double>> p;
    for (std::size_t i = 0; i < x.size(); ++i) p.emplace_back(x[i], y[i]);
    pts.push_back(std::move(p));
  }
  return ascii_series_chart(pts, names, opts);
}

}  // namespace ssnkit::io
