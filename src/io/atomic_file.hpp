// Crash-safe file replacement: write to a temporary file in the target's
// directory, fsync it, then rename() over the destination. A reader (or a
// resumed job) therefore sees either the complete old content or the
// complete new content — never a truncated half-write, which is the
// property the batch journal and the CSV outputs rely on.
#pragma once

#include <string>

namespace ssnkit::io {

/// Atomically replace `path` with `contents`. The temporary file lives in
/// the same directory (rename across filesystems is not atomic) and is
/// unlinked on any failure. Throws IoError{kOpenFailed} when the temporary
/// cannot be created and IoError{kWriteFailed} when writing, syncing, or
/// renaming fails.
void write_file_atomic(const std::string& path, const std::string& contents);

}  // namespace ssnkit::io
