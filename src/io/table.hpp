// Aligned plain-text tables — the bench binaries print the paper's
// figures/tables as rows through this.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace ssnkit::io {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);

  /// Preformatted cells; width must match the header count.
  void add_row(std::vector<std::string> cells);
  /// Numeric convenience: cells formatted with %.*g.
  void add_row(const std::vector<double>& cells, int precision = 5);

  std::size_t row_count() const { return rows_.size(); }

  void print(std::ostream& os) const;
  std::string to_string() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format a double with engineering-style SI suffix ("5n", "1.2p", "18G").
std::string si_format(double value, int digits = 4);

}  // namespace ssnkit::io
