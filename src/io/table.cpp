#include "io/table.hpp"

#include <cmath>
#include <cstdio>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace ssnkit::io {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  if (headers_.empty()) throw std::invalid_argument("TextTable: no headers");
}

void TextTable::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size())
    throw std::invalid_argument("TextTable::add_row: width mismatch");
  rows_.push_back(std::move(cells));
}

void TextTable::add_row(const std::vector<double>& cells, int precision) {
  std::vector<std::string> formatted;
  formatted.reserve(cells.size());
  char buf[64];
  for (double v : cells) {
    std::snprintf(buf, sizeof buf, "%.*g", precision, v);
    formatted.emplace_back(buf);
  }
  add_row(std::move(formatted));
}

void TextTable::print(std::ostream& os) const { os << to_string(); }

std::string TextTable::to_string() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  std::ostringstream os;
  const auto emit_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << (c == 0 ? "| " : " | ");
      os << cells[c];
      os << std::string(widths[c] - cells[c].size(), ' ');
    }
    os << " |\n";
  };
  emit_row(headers_);
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    os << (c == 0 ? "|-" : "-|-");
    os << std::string(widths[c], '-');
  }
  os << "-|\n";
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

std::string si_format(double value, int digits) {
  if (value == 0.0) return "0";  // ssnlint-ignore(SSN-L001)
  static constexpr struct {
    double scale = 0.0;
    const char* suffix;
  } kScales[] = {{1e12, "T"}, {1e9, "G"}, {1e6, "M"}, {1e3, "k"}, {1.0, ""},
                 {1e-3, "m"}, {1e-6, "u"}, {1e-9, "n"}, {1e-12, "p"}, {1e-15, "f"}};
  const double mag = std::fabs(value);
  for (const auto& s : kScales) {
    if (mag >= s.scale * 0.9995) {
      char buf[64];
      std::snprintf(buf, sizeof buf, "%.*g%s", digits, value / s.scale, s.suffix);
      return buf;
    }
  }
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*g", digits, value);
  return buf;
}

}  // namespace ssnkit::io
