// Structured input diagnostics for the parsing boundary (netlist, CSV,
// command line). The solver side has its own typed failure (see
// support/diagnostics.hpp: SolverError); this header is the input-side
// counterpart:
//
//   - Diagnostic: severity + SrcLoc + stable code + message + offending
//     token + a caret-rendered excerpt of the source line,
//   - DiagnosticSink: collects *all* diagnostics of a parse (error-recovery
//     mode) instead of aborting on the first, with an overflow cap so a
//     hostile input cannot make the sink itself unbounded,
//   - ParseError: the typed exception thrown by the throwing wrappers.
//     Derives from std::invalid_argument so legacy catch sites keep working;
//     what() renders every collected diagnostic,
//   - IoError: typed stream/file failure (open failed, short write) so
//     callers can distinguish "disk full" from "bad input",
//   - parse_double_prefix / parse_int_strict: the ONLY functions in the
//     tree allowed to call std::stod/std::stoi (ssnlint SSN-L007 enforces
//     this). They reject the non-decimal forms std::stod sneaks in
//     ("inf", "nan", hex floats like 0x1p3) and convert std::out_of_range
//     into a proper diagnosis instead of an unrelated exception type.
#pragma once

#include "support/atomic_file.hpp"
#include "support/srcloc.hpp"

#include <cstddef>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

namespace ssnkit::io {

enum class Severity { kNote, kWarning, kError };

inline const char* to_string(Severity s) {
  switch (s) {
    case Severity::kNote: return "note";
    case Severity::kWarning: return "warning";
    case Severity::kError: return "error";
  }
  return "unknown";
}

/// One located finding. `code` is a stable machine-readable identifier
/// (SSN-Exxx for errors, SSN-Wxxx for warnings) so tests and log scrapers
/// never have to match on prose.
struct Diagnostic {
  Severity severity = Severity::kError;
  support::SrcLoc loc;
  std::string code;     ///< "SSN-E102"; stable across wording changes
  std::string message;  ///< human-readable, no trailing newline
  std::string token;    ///< offending token, when one exists
  std::string excerpt;  ///< raw source line, when one exists

  /// Render as
  ///   file:3:12: error: bad suffix 'q' in '1.5q' [SSN-E002]
  ///     R1 a 0 1.5q
  ///            ^~~~
  /// The caret line underlines `token` starting at loc.column.
  std::string format() const;
};

/// Error-recovery collector. Parsers push every finding here and keep
/// going; the caller inspects has_errors() (or uses a throwing wrapper)
/// once the whole input has been seen. Identical findings (same location,
/// code and message — e.g. the same bad card expanded once per subcircuit
/// instance) are deduplicated.
class DiagnosticSink {
 public:
  explicit DiagnosticSink(std::size_t max_errors = 64)
      : max_errors_(max_errors) {}

  /// Returns false when the diagnostic was dropped (duplicate or the sink
  /// hit its error cap).
  bool add(Diagnostic d);

  void error(support::SrcLoc loc, std::string code, std::string message,
             std::string token = {}, std::string excerpt = {});
  void warning(support::SrcLoc loc, std::string code, std::string message,
               std::string token = {}, std::string excerpt = {});
  void note(support::SrcLoc loc, std::string code, std::string message,
            std::string token = {}, std::string excerpt = {});

  bool has_errors() const { return error_count_ > 0; }
  /// True once the error cap was hit (collection gave up early).
  bool overflowed() const { return overflowed_; }
  std::size_t error_count() const { return error_count_; }
  std::size_t warning_count() const { return warning_count_; }
  std::size_t max_errors() const { return max_errors_; }

  const std::vector<Diagnostic>& diagnostics() const { return diags_; }

  /// Every diagnostic, formatted and newline-separated, plus a one-line
  /// "N errors, M warnings" summary.
  std::string format_all() const;

 private:
  std::vector<Diagnostic> diags_;
  std::set<std::string> seen_keys_;  ///< dedup keys (loc+code+message)
  std::size_t max_errors_ = 64;
  std::size_t error_count_ = 0;
  std::size_t warning_count_ = 0;
  bool overflowed_ = false;
};

/// Thrown by the throwing parse wrappers after a full error-recovery pass:
/// carries every collected diagnostic; what() renders them all. Derives
/// from std::invalid_argument so pre-existing catch sites keep working.
class ParseError : public std::invalid_argument {
 public:
  explicit ParseError(const DiagnosticSink& sink);
  explicit ParseError(std::vector<Diagnostic> diagnostics);

  const std::vector<Diagnostic>& diagnostics() const { return diagnostics_; }

 private:
  std::vector<Diagnostic> diagnostics_;
};

/// Typed stream/file failure (open failed, short write, short read). The
/// class itself lives in support/atomic_file.hpp — the bottom layer owns
/// the crash-safe writer that throws it — and io re-exports it so parsing
/// and serialization callers keep writing io::IoError.
using support::IoError;
using support::to_string;

// ---------------------------------------------------------------------------
// Hardened numeric parsing. These are the only sanctioned call sites of
// std::stod/std::stoi in the tree (ssnlint SSN-L007).
// ---------------------------------------------------------------------------

/// Result of parsing a decimal double at the start of a token.
struct NumberParse {
  bool ok = false;
  double value = 0.0;
  std::size_t consumed = 0;  ///< characters of the numeric prefix
  std::string error;         ///< set when !ok
};

/// Parse a strictly decimal floating-point prefix: [+-]digits[.digits]
/// [(e|E)[+-]digits]. Rejects everything std::stod would sneak past a
/// validator: "inf"/"nan" (non-finite), hex floats ("0x1p3"), leading
/// whitespace. Overflow ("1e999") reports "out of range" instead of
/// leaking std::out_of_range. Trailing non-numeric characters are left for
/// the caller (SPICE unit suffixes).
NumberParse parse_double_prefix(const std::string& token);

/// Result of parsing a whole token as an int.
struct IntParse {
  bool ok = false;
  int value = 0;
  std::string error;  ///< set when !ok
};

/// Parse the ENTIRE token as a decimal integer (no suffix, no hex, no
/// whitespace); out-of-int-range values report "out of range".
IntParse parse_int_strict(const std::string& token);

}  // namespace ssnkit::io
