// Terminal line charts so the bench binaries can show the *shape* of each
// paper figure directly in their output (no plotting stack needed). This
// layer renders plain (x, y) point series only; the adapters that chart
// Waveforms live above, in waveform/render.hpp (io sits below waveform in
// the include DAG — SSN-L010).
#pragma once

#include <string>
#include <utility>
#include <vector>

namespace ssnkit::io {

struct ChartOptions {
  int width = 72;    ///< plot columns
  int height = 18;   ///< plot rows
  std::string title;
  std::string x_label = "t";
  std::string y_label = "v";
};

/// Render one or more point series on a shared axis. Each series is drawn
/// with its own glyph ('*', '+', 'o', 'x', '#', '@', in that order) and
/// listed in the legend with its name. Throws std::invalid_argument on an
/// empty series list or a names/series size mismatch.
std::string ascii_series_chart(
    const std::vector<std::vector<std::pair<double, double>>>& series,
    const std::vector<std::string>& names, const ChartOptions& opts = {});

/// Scatter-style chart from x/y arrays (used by the sweep benches).
std::string ascii_xy_chart(const std::vector<double>& x,
                           const std::vector<std::vector<double>>& ys,
                           const std::vector<std::string>& names,
                           const ChartOptions& opts = {});

}  // namespace ssnkit::io
