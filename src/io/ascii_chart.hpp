// Terminal line charts so the bench binaries can show the *shape* of each
// paper figure directly in their output (no plotting stack needed).
#pragma once

#include "waveform/waveform.hpp"

#include <string>
#include <vector>

namespace ssnkit::io {

struct ChartOptions {
  int width = 72;    ///< plot columns
  int height = 18;   ///< plot rows
  std::string title;
  std::string x_label = "t";
  std::string y_label = "v";
};

/// Render one or more series on a shared axis. Each series is drawn with
/// its own glyph ('*', '+', 'o', 'x', '#', '@', in that order) and listed
/// in the legend with its name.
std::string ascii_chart(const std::vector<const waveform::Waveform*>& series,
                        const std::vector<std::string>& names,
                        const ChartOptions& opts = {});

/// Convenience overload for a single waveform.
std::string ascii_chart(const waveform::Waveform& wave,
                        const ChartOptions& opts = {});

/// Scatter-style chart from x/y arrays (used by the sweep benches).
std::string ascii_xy_chart(const std::vector<double>& x,
                           const std::vector<std::vector<double>>& ys,
                           const std::vector<std::string>& names,
                           const ChartOptions& opts = {});

}  // namespace ssnkit::io
