#include "process/package.hpp"

#include "support/contracts.hpp"

#include <stdexcept>

// ssn-units: inductance=H, capacitance=F, resistance=Ohm

namespace ssnkit::process {

void Package::validate() const {
  SSN_REQUIRE(inductance > 0.0, "Package: inductance must be > 0");
  SSN_REQUIRE(capacitance >= 0.0, "Package: capacitance must be >= 0");
  SSN_REQUIRE(resistance >= 0.0, "Package: resistance must be >= 0");
}

Package Package::with_ground_pads(int n) const {
  SSN_REQUIRE(n >= 1, "Package::with_ground_pads: n must be >= 1");
  Package p = *this;
  p.name = name + "x" + std::to_string(n);
  p.inductance /= double(n);
  p.capacitance *= double(n);
  p.resistance /= double(n);
  return p;
}

Package package_pga() { return {"pga", 5e-9, 1e-12, 10e-3}; }
Package package_qfp() { return {"qfp", 8e-9, 0.8e-12, 20e-3}; }
Package package_wire_bond() { return {"wire_bond", 3e-9, 0.5e-12, 50e-3}; }
Package package_flip_chip() { return {"flip_chip", 0.5e-9, 0.3e-12, 5e-3}; }

Package package_by_name(const std::string& name) {
  if (name == "pga") return package_pga();
  if (name == "qfp") return package_qfp();
  if (name == "wire_bond") return package_wire_bond();
  if (name == "flip_chip") return package_flip_chip();
  throw std::invalid_argument("package_by_name: unknown package '" + name + "'");
}

}  // namespace ssnkit::process
