// Package / bonding parasitics of the ground return path. The paper quotes
// a pin-grid-array ground pin as L = 5 nH, C = 1 pF, R = 10 mOhm and
// argues R is negligible while C is not (Section 4).
#pragma once

#include <string>

namespace ssnkit::process {

/// Lumped parasitics of the ground connection as seen by the internal
/// ground node: series inductance + resistance to the true ground, and the
/// pad/wire capacitance from the internal ground node to the true ground.
struct Package {
  std::string name;
  double inductance = 5e-9;   ///< L [H]
  double capacitance = 1e-12; ///< C [F]
  double resistance = 10e-3;  ///< R [Ohm]

  void validate() const;

  /// Effective parasitics when `n` ground pads/pins are bonded in parallel:
  /// L and R divide by n, C multiplies by n (the paper's Fig. 4(b)/(d)
  /// configuration is pga().with_ground_pads(2)).
  Package with_ground_pads(int n) const;
};

/// Pin grid array ground pin — the paper's reference package.
Package package_pga();
/// Quad flat pack (longer leadframe: more L, slightly less C).
Package package_qfp();
/// Plain bond wire + pad, chip-on-board.
Package package_wire_bond();
/// Flip-chip solder bump (an order of magnitude less inductance).
Package package_flip_chip();

/// Lookup by name ("pga", "qfp", "wire_bond", "flip_chip");
/// throws std::invalid_argument for unknown names.
Package package_by_name(const std::string& name);

}  // namespace ssnkit::process
