// Technology descriptions: supply, golden-device parameters and nominal
// output-driver sizing for three CMOS generations matching the processes
// the paper evaluates (0.18 um, 0.25 um, 0.35 um class).
//
// The numeric values are representative textbook/public-domain numbers for
// each node, NOT foundry data (see DESIGN.md, substitutions table). The
// reproduction only relies on the qualitative properties: V_DD, threshold
// around 0.45-0.6 V, alpha between 1.2 and 1.6, and a real body effect.
#pragma once

#include "devices/alpha_power.hpp"
#include "devices/bsim_lite.hpp"

#include <memory>
#include <string>

namespace ssnkit::process {

/// Which golden device stands in for the foundry BSIM3 model.
enum class GoldenKind {
  kAlphaPower,  ///< Sakurai–Newton with body effect + CLM
  kBsimLite,    ///< mobility degradation + velocity saturation model
};

struct Technology {
  std::string name;
  double vdd = 1.8;          ///< nominal supply [V]
  double lmin_um = 0.18;     ///< drawn channel length [um]
  /// Nominal width of one output-driver pull-down finger [um]; device
  /// parameters below are already scaled to this width.
  double driver_w_um = 60.0;
  /// Typical output load (pad + board trace) one driver discharges [F].
  double load_cap = 10e-12;
  /// Gate capacitance of one nominal-width driver device [F]; scales
  /// linearly with the width multiplier (used by the tapered-chain bench).
  double gate_cap = 120e-15;

  devices::AlphaPowerParams alpha_power;
  devices::BsimLiteParams bsim_lite;

  /// Instantiate the golden device (width multiplier scales the current).
  std::unique_ptr<devices::MosfetModel> make_golden(
      GoldenKind kind = GoldenKind::kAlphaPower, double width_mult = 1.0) const;

  void validate() const;
};

/// 0.18 um-class process: vdd = 1.8 V (the paper's main vehicle).
Technology tech_180nm();
/// 0.25 um-class process: vdd = 2.5 V.
Technology tech_250nm();
/// 0.35 um-class process: vdd = 3.3 V.
Technology tech_350nm();

/// Lookup by name ("180nm", "250nm", "350nm");
/// throws std::invalid_argument for unknown names.
Technology technology_by_name(const std::string& name);

}  // namespace ssnkit::process
