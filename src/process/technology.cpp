#include "process/technology.hpp"

#include "support/contracts.hpp"

#include <stdexcept>

// ssn-units: vdd=V, vt0=V, vd0=V, vsat_v=V, phi2f=V
// ssn-units: load_cap=F, gate_cap=F, id0=A

namespace ssnkit::process {

std::unique_ptr<devices::MosfetModel> Technology::make_golden(
    GoldenKind kind, double width_mult) const {
  std::unique_ptr<devices::MosfetModel> base;
  switch (kind) {
    case GoldenKind::kAlphaPower:
      base = std::make_unique<devices::AlphaPowerModel>(alpha_power);
      break;
    case GoldenKind::kBsimLite:
      base = std::make_unique<devices::BsimLiteModel>(bsim_lite);
      break;
  }
  if (width_mult == 1.0) return base;  // ssnlint-ignore(SSN-L001)
  return std::make_unique<devices::ScaledMosfetModel>(std::move(base), width_mult);
}

void Technology::validate() const {
  SSN_REQUIRE(vdd > 0.0, "Technology: vdd must be > 0");
  SSN_REQUIRE(driver_w_um > 0.0, "Technology: driver_w_um must be > 0");
  SSN_REQUIRE(load_cap > 0.0, "Technology: load_cap must be > 0");
  SSN_REQUIRE(gate_cap > 0.0, "Technology: gate_cap must be > 0");
  alpha_power.validate();
  bsim_lite.validate();
}

Technology tech_180nm() {
  Technology t;
  t.name = "180nm";
  t.vdd = 1.8;
  t.lmin_um = 0.18;
  t.driver_w_um = 60.0;
  t.load_cap = 10e-12;
  t.gate_cap = 120e-15;
  t.alpha_power = {.vdd = 1.8,
                   .vt0 = 0.45,
                   .alpha = 1.3,
                   .id0 = 6.5e-3,
                   .vd0 = 0.9,
                   .gamma = 0.35,
                   .phi2f = 0.85,
                   .lambda_clm = 0.05,
                   .eps_smooth = 2e-3};
  t.bsim_lite = {.kp = 2.2e-2,
                 .vt0 = 0.45,
                 .gamma = 0.35,
                 .phi2f = 0.85,
                 .theta = 0.25,
                 .vsat_v = 1.1,
                 .lambda_clm = 0.06,
                 .eps_smooth = 2e-3};
  t.validate();
  return t;
}

Technology tech_250nm() {
  Technology t;
  t.name = "250nm";
  t.vdd = 2.5;
  t.lmin_um = 0.25;
  t.driver_w_um = 80.0;
  t.load_cap = 12e-12;
  t.gate_cap = 180e-15;
  t.alpha_power = {.vdd = 2.5,
                   .vt0 = 0.50,
                   .alpha = 1.4,
                   .id0 = 7.5e-3,
                   .vd0 = 1.1,
                   .gamma = 0.40,
                   .phi2f = 0.80,
                   .lambda_clm = 0.04,
                   .eps_smooth = 2e-3};
  t.bsim_lite = {.kp = 1.6e-2,
                 .vt0 = 0.50,
                 .gamma = 0.40,
                 .phi2f = 0.80,
                 .theta = 0.20,
                 .vsat_v = 1.5,
                 .lambda_clm = 0.05,
                 .eps_smooth = 2e-3};
  t.validate();
  return t;
}

Technology tech_350nm() {
  Technology t;
  t.name = "350nm";
  t.vdd = 3.3;
  t.lmin_um = 0.35;
  t.driver_w_um = 100.0;
  t.load_cap = 15e-12;
  t.gate_cap = 260e-15;
  t.alpha_power = {.vdd = 3.3,
                   .vt0 = 0.60,
                   .alpha = 1.5,
                   .id0 = 9.0e-3,
                   .vd0 = 1.5,
                   .gamma = 0.45,
                   .phi2f = 0.80,
                   .lambda_clm = 0.03,
                   .eps_smooth = 2e-3};
  t.bsim_lite = {.kp = 1.2e-2,
                 .vt0 = 0.60,
                 .gamma = 0.45,
                 .phi2f = 0.80,
                 .theta = 0.15,
                 .vsat_v = 2.2,
                 .lambda_clm = 0.04,
                 .eps_smooth = 2e-3};
  t.validate();
  return t;
}

Technology technology_by_name(const std::string& name) {
  if (name == "180nm") return tech_180nm();
  if (name == "250nm") return tech_250nm();
  if (name == "350nm") return tech_350nm();
  throw std::invalid_argument("technology_by_name: unknown technology '" + name + "'");
}

}  // namespace ssnkit::process
