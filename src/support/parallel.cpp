#include "support/parallel.hpp"

#include <algorithm>

namespace ssnkit::support {

int resolve_threads(int requested) {
  if (requested > 0) return std::min(requested, 64);
  const unsigned hw = std::thread::hardware_concurrency();
  return int(std::clamp(hw == 0 ? 1u : hw, 1u, 16u));
}

ThreadPool::ThreadPool(int threads) {
  const int n = std::max(threads, 1);
  workers_.reserve(std::size_t(n));
  for (int i = 0; i < n; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_job_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::worker_loop() {
  std::uint64_t seen = 0;
  for (;;) {
    const std::function<void(std::size_t)>* body = nullptr;
    const RunContext* ctx = nullptr;
    std::size_t count = 0;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_job_.wait(lock, [&] { return stop_ || generation_ != seen; });
      if (stop_) return;
      seen = generation_;
      body = body_;
      ctx = ctx_;
      count = count_;
    }
    for (;;) {
      // Cooperative cancellation: poll before claiming, so a stop drains
      // the batch (in-flight items finish, unclaimed items stay unclaimed)
      // without being mistaken for a crash.
      if (ctx != nullptr && ctx->stop_requested() != StopReason::kNone) {
        drained_.store(true, std::memory_order_relaxed);
        next_.store(count, std::memory_order_relaxed);
        break;
      }
      const std::size_t i = next_.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) break;
      try {
        (*body)(i);
        completed_.fetch_add(1, std::memory_order_relaxed);
        // Not a swallow: the exception is stored and rethrown on the
        // caller's thread after the batch joins (see for_index).
      } catch (...) {  // ssnlint-ignore(SSN-L005)
        std::lock_guard<std::mutex> lock(mu_);
        if (!error_) error_ = std::current_exception();
        // Drain the cursor so siblings stop claiming new items; everyone
        // still finishes the item they are on.
        next_.store(count, std::memory_order_relaxed);
      }
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--active_ == 0) cv_done_.notify_all();
    }
  }
}

BatchStatus ThreadPool::for_index(std::size_t count,
                                  const std::function<void(std::size_t)>& body,
                                  const RunContext* ctx) {
  if (count == 0) return {};
  std::unique_lock<std::mutex> lock(mu_);
  body_ = &body;
  ctx_ = ctx;
  count_ = count;
  next_.store(0, std::memory_order_relaxed);
  completed_.store(0, std::memory_order_relaxed);
  drained_.store(false, std::memory_order_relaxed);
  error_ = nullptr;
  active_ = workers_.size();
  ++generation_;
  cv_job_.notify_all();
  cv_done_.wait(lock, [&] { return active_ == 0; });
  body_ = nullptr;
  ctx_ = nullptr;
  // An exception outranks a concurrent cancellation: the caller must see
  // the crash even if the token also tripped while draining.
  if (error_) std::rethrow_exception(error_);
  return {completed_.load(std::memory_order_relaxed),
          drained_.load(std::memory_order_relaxed)};
}

BatchStatus parallel_for_index(int threads, std::size_t count,
                               const std::function<void(std::size_t)>& body,
                               const RunContext* ctx) {
  const int n = resolve_threads(threads);
  if (n <= 1 || count <= 1) {
    BatchStatus status;
    for (std::size_t i = 0; i < count; ++i) {
      if (ctx != nullptr && ctx->stop_requested() != StopReason::kNone) {
        status.stopped = true;
        return status;
      }
      body(i);
      ++status.completed;
    }
    return status;
  }
  ThreadPool pool(int(std::min<std::size_t>(std::size_t(n), count)));
  return pool.for_index(count, body, ctx);
}

}  // namespace ssnkit::support
