// Deterministic batch parallelism for the analysis layer.
//
// The batch drivers (Monte Carlo, sweeps, sensitivities) are embarrassingly
// parallel: every item is independent, expensive, and writes one
// preallocated result slot. This header provides the primitive they need —
// `parallel_for_index` — backed by a fixed-size thread pool.
//
// Determinism contract (what makes threads > 1 safe to expose as a CLI
// knob): callers draw all per-item randomness up front, bodies write only
// their own index-addressed slot, and any order-sensitive side effects
// (summary records, survivor lists) are replayed sequentially after the
// join. Under that contract the output is bit-for-bit identical for any
// thread count, which tests/test_parallel_equivalence.cpp enforces.
//
// Exceptions thrown by a body are captured; the first one (by completion
// order) is rethrown on the calling thread after all workers finish the
// items they already claimed. Remaining unclaimed items are skipped.
//
// Cancellation: when a job carries a RunContext, every worker polls it
// before claiming the next item. A tripped token (or an expired deadline)
// drains the batch exactly like an exception does — in-flight items finish,
// unclaimed items are skipped — but *without* an error: the returned
// BatchStatus reports `stopped` so the driver can tell "cancelled" from
// "crashed" and account the unclaimed items as not-run.
#pragma once

#include "support/runcontext.hpp"

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace ssnkit::support {

/// What a batch actually did: how many bodies ran to completion and whether
/// a RunContext stop drained the job early. (An exception rethrows instead;
/// `stopped` is only ever set by cooperative cancellation.)
struct BatchStatus {
  std::size_t completed = 0;
  bool stopped = false;
};

/// Normalize a thread-count knob: values > 0 pass through (capped at 64);
/// 0 or negative means "auto" = hardware concurrency clamped to [1, 16].
int resolve_threads(int requested);

/// A fixed-size pool of worker threads executing index-space jobs. Workers
/// are spawned once in the constructor and claim indices from a shared
/// atomic cursor, so item granularity can be very uneven (a sample that
/// climbs the whole recovery ladder next to one that converges instantly)
/// without idling anyone.
class ThreadPool {
 public:
  /// Spawn `threads` workers (clamped to >= 1).
  explicit ThreadPool(int threads);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int thread_count() const { return int(workers_.size()); }

  /// Run body(i) for every i in [0, count); blocks until all items finish.
  /// The first exception a body throws is rethrown here after the join.
  /// When `ctx` is non-null, workers poll it before claiming each item and
  /// drain cleanly on stop (reported via the returned status).
  BatchStatus for_index(std::size_t count,
                        const std::function<void(std::size_t)>& body,
                        const RunContext* ctx = nullptr);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable cv_job_;   ///< wakes workers on a new job / stop
  std::condition_variable cv_done_;  ///< wakes the caller when a job drains
  const std::function<void(std::size_t)>* body_ = nullptr;  // guarded by mu_
  const RunContext* ctx_ = nullptr;  ///< current job's context; guarded by mu_
  std::size_t count_ = 0;            ///< items in the current job
  std::atomic<std::size_t> next_{0};  ///< next unclaimed index
  std::atomic<std::size_t> completed_{0};  ///< bodies finished this job
  std::atomic<bool> drained_{false};  ///< a RunContext stop drained the job
  std::size_t active_ = 0;           ///< workers still inside the job
  std::uint64_t generation_ = 0;     ///< bumped per job
  bool stop_ = false;
  std::exception_ptr error_;         ///< first body exception, if any
};

/// Run body(i) for every i in [0, count), distributing items over
/// `threads` workers (after resolve_threads). threads <= 1 — and any
/// count <= 1 — runs inline on the caller with no pool at all, so the
/// serial path is exactly the plain loop (including the per-item
/// RunContext poll when `ctx` is non-null).
BatchStatus parallel_for_index(int threads, std::size_t count,
                               const std::function<void(std::size_t)>& body,
                               const RunContext* ctx = nullptr);

}  // namespace ssnkit::support
