// A source location (file, 1-based line, 1-based column) for input
// diagnostics. Every parse error in the input boundary — netlist, CSV,
// command line — carries one so a user (or a log scraper) can jump straight
// to the offending token instead of grepping for a quoted fragment.
#pragma once

#include <string>

namespace ssnkit::support {

struct SrcLoc {
  std::string file = "<input>";
  int line = 0;    ///< 1-based; 0 = whole-file / unknown
  int column = 0;  ///< 1-based; 0 = whole-line / unknown

  /// "file:line:column" with the zero parts omitted ("file", "file:3",
  /// "file:3:12") — the format editors and CI annotations understand.
  std::string to_string() const {
    std::string s = file;
    if (line > 0) {
      s += ':';
      s += std::to_string(line);
      if (column > 0) {
        s += ':';
        s += std::to_string(column);
      }
    }
    return s;
  }
};

inline SrcLoc srcloc(std::string file, int line = 0, int column = 0) {
  return SrcLoc{std::move(file), line, column};
}

}  // namespace ssnkit::support
