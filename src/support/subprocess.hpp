// Minimal fork/socketpair plumbing for supervised worker processes.
//
// The serve supervisor (serve/supervisor.hpp) needs exactly four process
// primitives: spawn a child connected by a byte stream, exchange newline-
// framed messages with a deadline, observe how the child died, and kill it.
// This header is the only sanctioned home for those raw syscalls outside
// the supervisor itself — ssnlint rule SSN-L014 flags `fork`/`waitpid`/
// `kill` anywhere else, so process lifecycle management cannot leak into
// layers that could never clean up after it.
//
// Design constraints baked in:
//
//   - The child runs `child_main(fd)` and then _exits; it never returns
//     into the parent's call stack, never runs the parent's destructors or
//     atexit handlers, and resets SIGINT/SIGTERM so a terminal Ctrl-C (sent
//     to the whole foreground process group) is handled by the supervisor,
//     not by each worker racing it.
//   - Line IO is poll-driven with caller-owned deadlines: read_line never
//     blocks past `deadline`, which is what lets the supervisor's watchdog
//     stay in control of a wedged child.
//   - ExitStatus separates "exited with code" from "killed by signal"
//     because the supervisor types them differently (a nonzero exit is a
//     worker bug; SIGKILL is usually the watchdog or the rlimit).
//
// Everything here is Linux/POSIX; the serve daemon itself is POSIX-only
// (socket.cpp), so there is no _WIN32 branch to keep alive.
#pragma once

#include <chrono>
#include <functional>
#include <string>

namespace ssnkit::support {

/// One spawned child: its pid and the parent's end of the socketpair.
struct ChildProcess {
  long pid = -1;
  int fd = -1;
};

/// Resource caps applied inside the child before child_main runs.
/// ssn-units: mem_limit_mb=MB, cpu_limit_s=s
struct ChildLimits {
  /// RLIMIT_AS cap; 0 = unlimited. Allocation past the cap fails with
  /// bad_alloc inside the child rather than invoking the host OOM killer.
  std::size_t mem_limit_mb = 0;
  /// RLIMIT_CPU cap; 0 = unlimited. A child that spins past the cap gets
  /// SIGKILL'd by the kernel (SIGXCPU is reset to default-kill first).
  double cpu_limit_s = 0.0;
};

/// Fork a child connected to the parent by an AF_UNIX socketpair. The child
/// applies `limits`, resets signal dispositions, closes the parent's end,
/// runs `child_main(child_fd)`, and _exits with its return value (core
/// dumps disabled via RLIMIT_CORE=0 — a supervised crash is expected, not
/// evidence to keep). Returns false with `err` set when socketpair or fork
/// fail; the child side never returns.
bool spawn_child(const std::function<int(int fd)>& child_main,
                 const ChildLimits& limits, ChildProcess& out,
                 std::string& err);

/// Write `line` plus a trailing newline, looping over partial writes.
/// Returns false on any write error (EPIPE after a child death being the
/// expected one); SIGPIPE is suppressed per-call via MSG_NOSIGNAL.
bool write_line(int fd, const std::string& line);

enum class ReadLineStatus {
  kLine,     ///< one full line extracted into `line`
  kEof,      ///< peer closed (child exited) with no complete line pending
  kTimeout,  ///< deadline passed with no complete line
  kError,    ///< read error
};

/// Extract the next newline-terminated line from `fd`, buffering partial
/// reads in `inbuf` across calls. Polls in short slices until `deadline`
/// (steady clock), so a wedged peer costs bounded wall-clock, not a hung
/// thread. The returned `line` has the newline stripped.
ReadLineStatus read_line(int fd, std::string& inbuf, std::string& line,
                         std::chrono::steady_clock::time_point deadline);

/// How a child ended.
struct ExitStatus {
  bool exited = false;  ///< true: normal exit(code); false: killed by sig
  int code = 0;
  int sig = 0;
};

/// Reap a child. Non-blocking when `block` is false (returns false while
/// the child is still running); blocking reap otherwise. Returns true with
/// `out` filled once the child is reaped.
bool wait_child(long pid, ExitStatus& out, bool block);

/// Send SIGKILL to a child (idempotent; ESRCH is fine).
void kill_child(long pid);

/// Human-readable rendering for diagnostics: "exit 3", "signal 9 (SIGKILL)".
std::string describe_exit(const ExitStatus& status);

}  // namespace ssnkit::support
