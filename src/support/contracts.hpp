// Lightweight contract macros for the solver kernels and model builders.
//
// The ASDM value proposition (restricted-region accuracy, Eqn 3) only holds
// while the solvers stay inside their valid region: a NaN that slips through
// the LM fit or the MNA Newton loop produces plausible-looking but wrong
// K / lambda / V_x and therefore a wrong V_max (Eqn 7). Preconditions guard
// the region entry, postconditions guard the region exit.
//
//   SSN_REQUIRE(cond, msg)   precondition  — argument/state validation
//   SSN_ENSURE(cond, msg)    postcondition — result validation
//   SSN_ASSERT_FINITE(x)     finite-value check on a double or a range of
//                            doubles (Vector, std::vector<double>, ...)
//
// All three throw ssnkit::ContractViolation carrying file:line and the
// failed condition. ContractViolation derives from std::invalid_argument so
// callers that already catch the pre-contract exception types keep working.
//
// Defining SSNKIT_NO_CONTRACTS compiles every macro down to a no-op with
// zero argument evaluation, for benchmarking the raw kernel cost.
#pragma once

#include <cmath>
#include <stdexcept>
#include <string>
#include <type_traits>

namespace ssnkit {

/// Thrown when an SSN_REQUIRE / SSN_ENSURE / SSN_ASSERT_FINITE contract
/// fails. The what() string is "<kind> failed at <file>:<line>: <message>".
class ContractViolation : public std::invalid_argument {
 public:
  ContractViolation(const char* kind, const char* file, long line,
                    const std::string& message)
      : std::invalid_argument(std::string(kind) + " failed at " + file + ":" +
                              std::to_string(line) + ": " + message) {}
};

namespace detail {

[[noreturn]] inline void contract_fail(const char* kind, const char* file,
                                       long line, const std::string& message) {
  throw ContractViolation(kind, file, line, message);
}

/// True when every element of `x` is finite; accepts a double (or anything
/// convertible to one) or any range of doubles.
template <class T>
bool contract_all_finite(const T& x) {
  if constexpr (std::is_convertible_v<const T&, double>) {
    return std::isfinite(static_cast<double>(x));
  } else {
    for (const double v : x)
      if (!std::isfinite(v)) return false;
    return true;
  }
}

}  // namespace detail
}  // namespace ssnkit

#if defined(SSNKIT_NO_CONTRACTS)

#define SSN_REQUIRE(cond, msg) static_cast<void>(0)
#define SSN_ENSURE(cond, msg) static_cast<void>(0)
#define SSN_ASSERT_FINITE(x) static_cast<void>(0)

#else

#define SSN_REQUIRE(cond, msg)                                              \
  do {                                                                      \
    if (!(cond))                                                            \
      ::ssnkit::detail::contract_fail("precondition", __FILE__, __LINE__,   \
                                      (msg));                               \
  } while (false)

#define SSN_ENSURE(cond, msg)                                               \
  do {                                                                      \
    if (!(cond))                                                            \
      ::ssnkit::detail::contract_fail("postcondition", __FILE__, __LINE__,  \
                                      (msg));                               \
  } while (false)

#define SSN_ASSERT_FINITE(x)                                                \
  do {                                                                      \
    if (!::ssnkit::detail::contract_all_finite(x))                          \
      ::ssnkit::detail::contract_fail(                                      \
          "finite-value contract", __FILE__, __LINE__,                      \
          "non-finite value in '" #x "'");                                  \
  } while (false)

#endif  // SSNKIT_NO_CONTRACTS
