// Crash-safe checkpoint journal for the batch drivers (Monte Carlo and the
// sweeps). One journal = one batch: a versioned header binding the journal
// to a specific job configuration, then one record per completed item,
// keyed by the item's index.
//
// Why this is enough for bit-identical resume: the batch drivers draw every
// item's randomness up front from the seed and each item's computation
// depends only on its index (PR 4's determinism contract). A record
// therefore only needs the item's *outcome* — fidelity, V_max (as the raw
// IEEE-754 bit pattern, so the text round-trip is exact), and the error
// kind — and a resumed run re-derives everything else, making the final
// result indistinguishable from an uninterrupted run.
//
// Durability: every record() rewrites the whole journal through
// support::write_file_atomic (temp + fsync + rename), so the on-disk file is
// always a complete, parseable journal — kill the process at any instant
// and at worst the most recent item is lost (and simply re-runs on resume).
// Journals are small (tens of bytes per item); the O(items^2) total write
// volume is noise next to one transient solve.
//
// File format (line-oriented text, all integers decimal except the 16-digit
// lowercase hex fields):
//
//   ssnkit-journal v1
//   kind mc-sim
//   config 9ae16a3b2f90404f
//   total 16
//   item 3 5 3fb999999999999a 4
//
// item fields: index, fidelity (sim::Fidelity as int), V_max bit pattern,
// error kind (support::SolverErrorKind as int, -1 = no error).
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <stdexcept>
#include <string>
#include <vector>

namespace ssnkit::support {

// --- exact double <-> text helpers ------------------------------------------

/// The raw IEEE-754 bit pattern of a double (and back). Used wherever a
/// double must survive a text round-trip bit-exactly — "%.17g" would too,
/// but bit patterns make the exactness obvious and greppable.
std::uint64_t double_bits(double value);
double bits_double(std::uint64_t bits);

/// 16-digit lowercase hex encoding of a u64 and its strict parser. The
/// parser is hand-rolled: the strto* family is banned outside the hardened
/// io parsers (ssnlint SSN-L007) and accepts prefixes/whitespace we do not
/// want in a journal anyway.
std::string hex_u64(std::uint64_t value);
bool parse_hex_u64(const std::string& text, std::uint64_t& out);

/// FNV-1a over a canonical configuration string; binds a journal to the
/// exact job parameters so a resume against a different configuration is
/// rejected instead of silently producing garbage.
std::uint64_t fnv1a(const std::string& text);

// --- the journal -------------------------------------------------------------

/// One completed batch item's outcome, in the representation the drivers
/// need to replay it: enums as ints (the support layer cannot see
/// sim::Fidelity), V_max as its bit pattern.
struct PointRecord {
  int fidelity = 0;
  std::uint64_t v_bits = 0;
  int error_kind = -1;  ///< SolverErrorKind as int; -1 = no error
  /// verify::Verdict as int; -1 = not recorded (a journal written before
  /// the trust layer). Journaled so a resumed sample replays the trust
  /// verdict it earned when it actually ran, bit-identically.
  int trust = -1;
};

/// Typed journal failure: distinguishes "file missing" from "corrupt" from
/// "valid journal for a different job".
class JournalError : public std::runtime_error {
 public:
  enum class Kind {
    kOpenFailed,   ///< journal file cannot be read
    kBadFormat,    ///< header/record does not parse as a v1 journal
    kMismatch,     ///< parses, but kind/config/total disagree with this job
  };

  JournalError(Kind kind, const std::string& path, const std::string& message)
      : std::runtime_error("journal '" + path + "': " + message),
        kind_(kind) {}

  Kind kind() const { return kind_; }

 private:
  Kind kind_;
};

/// Incremental, thread-safe checkpoint writer plus the strict loader for
/// resume. record() may be called concurrently from batch workers; each
/// call atomically rewrites the file so it is always complete on disk.
class BatchJournal {
 public:
  struct Header {
    int version = 1;
    std::string kind;            ///< "mc-sim", "sweep-n", "sweep-c"
    std::uint64_t config_hash = 0;
    std::size_t total = 0;       ///< items in the full batch
  };

  struct Loaded {
    Header header;
    std::map<std::size_t, PointRecord> items;
    /// Non-fatal findings from the load, one formatted line each (code
    /// SSN-W067): a torn trailing record — the file was cut mid-line, e.g.
    /// by power loss between write and directory fsync — is discarded and
    /// reported here instead of aborting the resume. Interior corruption
    /// still throws: atomic rewrites never produce it, so it means the
    /// file was damaged by something other than a torn write.
    std::vector<std::string> warnings;
  };

  BatchJournal(std::string path, std::string kind, std::uint64_t config_hash,
               std::size_t total);

  const std::string& path() const { return path_; }
  std::size_t size() const;

  /// Checkpoint one completed item (thread-safe; last write per index
  /// wins). Flushes the whole journal atomically before returning.
  void record(std::size_t index, const PointRecord& record);

  /// Strict load: throws JournalError on unreadable files, unknown
  /// versions, or malformed headers/records. Configuration *matching* is
  /// the caller's job — it knows the current run's kind/hash/total — via
  /// validate_against().
  static Loaded load(const std::string& path);

  /// Reject a loaded journal that belongs to a different job. Throws
  /// JournalError{kMismatch} naming the first disagreeing field.
  static void validate_against(const Loaded& loaded, const std::string& kind,
                               std::uint64_t config_hash, std::size_t total,
                               const std::string& path);

 private:
  std::string render_locked() const;

  const std::string path_;
  Header header_;
  mutable std::mutex mu_;
  std::map<std::size_t, PointRecord> items_;  // guarded by mu_
};

}  // namespace ssnkit::support
