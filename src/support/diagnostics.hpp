// Structured solver diagnostics: a typed SolverError that replaces the
// ad-hoc std::runtime_error throws in the solver kernels (sim/engine.cpp,
// numeric/lu.cpp, numeric/sparse.cpp, ...).
//
// A bare runtime_error tells a batch driver nothing: it cannot distinguish
// "this sample's Newton iteration wandered off and a retry with tighter
// damping would succeed" from "the circuit is structurally singular and no
// amount of retrying will help". SolverError carries
//
//   - a SolverErrorKind (with a retryability classification),
//   - the failure location (simulation time, offending node),
//   - the last Newton residual / update norm,
//   - the DC homotopy trail (which stepping strategies ran, how far each
//     got, and the residual it stalled at), and
//   - the recovery rungs a RecoveryPolicy already attempted.
//
// SolverError derives from std::runtime_error so every pre-existing
// `catch (const std::runtime_error&)` keeps working; new callers switch on
// kind() instead of parsing what().
#pragma once

#include <cmath>
#include <stdexcept>
#include <string>
#include <vector>

namespace ssnkit::support {

/// What class of failure the solver hit. The taxonomy matters more than the
/// message: the recovery ladder keys its escalation on it.
enum class SolverErrorKind {
  kNewtonDivergence,     ///< Newton iteration did not converge (transient)
  kSingularMatrix,       ///< LU/QR factorization found a singular system
  kNonFiniteValue,       ///< NaN/Inf residual or solution detected
  kStepUnderflow,        ///< adaptive timestep fell below dt_min
  kStepBudgetExhausted,  ///< max_steps hit (pathological grinding)
  kHomotopyExhausted,    ///< every DC homotopy (plain/gmin/source) failed
  kCancelled,            ///< the job's RunContext was cancelled mid-solve
  kDeadlineExpired,      ///< the job's RunContext deadline passed mid-solve
  kResidualDegraded,     ///< solve residual stayed bad after refinement
};

inline const char* to_string(SolverErrorKind kind) {
  switch (kind) {
    case SolverErrorKind::kNewtonDivergence: return "newton-divergence";
    case SolverErrorKind::kSingularMatrix: return "singular-matrix";
    case SolverErrorKind::kNonFiniteValue: return "non-finite-value";
    case SolverErrorKind::kStepUnderflow: return "step-underflow";
    case SolverErrorKind::kStepBudgetExhausted: return "step-budget-exhausted";
    case SolverErrorKind::kHomotopyExhausted: return "homotopy-exhausted";
    case SolverErrorKind::kCancelled: return "cancelled";
    case SolverErrorKind::kDeadlineExpired: return "deadline-expired";
    case SolverErrorKind::kResidualDegraded: return "residual-degraded";
  }
  return "unknown";
}

/// Whether a RecoveryPolicy rung has a realistic chance of getting past
/// this failure. kStepBudgetExhausted is classified retryable because a
/// different integrator or dt_max often stops the grinding; a singular
/// matrix is retryable only through the gmin path, which the ladder knows.
inline bool is_retryable(SolverErrorKind kind) {
  switch (kind) {
    case SolverErrorKind::kNewtonDivergence:
    case SolverErrorKind::kNonFiniteValue:
    case SolverErrorKind::kStepUnderflow:
    case SolverErrorKind::kStepBudgetExhausted:
    case SolverErrorKind::kSingularMatrix:
    // A degraded residual is usually a corrupted or stale factorization; a
    // retry with a fresh full factorization (recovery rung 0 re-runs it)
    // clears a bit-flip, and a genuinely ill-conditioned system walks the
    // ladder down to the analytic rung instead of being served unchecked.
    case SolverErrorKind::kResidualDegraded:
      return true;
    case SolverErrorKind::kHomotopyExhausted:
    case SolverErrorKind::kCancelled:
    case SolverErrorKind::kDeadlineExpired:
      return false;
  }
  return false;
}

/// Whether this failure is a cooperative stop (the job was told to wind
/// down) rather than a numerical failure. Stop kinds must never be "fixed":
/// the recovery ladder does not climb past them (they are non-retryable)
/// and the analytic measurement fallback must not paper over them — a
/// cancelled sample is *not run*, not *degraded*.
inline bool is_stop_kind(SolverErrorKind kind) {
  return kind == SolverErrorKind::kCancelled ||
         kind == SolverErrorKind::kDeadlineExpired;
}

/// One leg of the DC homotopy (plain Newton, one gmin value, one source
/// scale): how far it got before converging or stalling.
struct HomotopyStage {
  std::string name;            ///< "plain-newton", "gmin=1e-04", "source=0.3"
  bool converged = false;
  std::size_t iterations = 0;  ///< Newton iterations this stage spent
  double residual = 0.0;       ///< final KCL residual ||A*x - b||_inf
  double max_dv = 0.0;         ///< last Newton update norm (stall indicator)
};

/// One rung of the recovery ladder and what happened on it.
struct RecoveryAttempt {
  std::string rung;      ///< "full-device", "tighten-damping", ...
  bool succeeded = false;
  std::string detail;    ///< error summary or step statistics
};

/// Everything known about a failure, attached to the SolverError. Kept as a
/// plain aggregate so solver internals can fill it incrementally.
struct SolverDiagnostics {
  std::string where;            ///< entry point: "dc_operating_point", ...
  double time = std::nan("");   ///< simulation time of failure; NaN = n/a
  int node = -1;                ///< offending node index; -1 = unknown
  std::string node_name;        ///< its name when resolvable
  std::size_t newton_iterations = 0;  ///< total Newton iterations spent
  double residual = std::nan("");     ///< final KCL residual ||A*x - b||_inf
  double max_dv = std::nan("");       ///< last Newton update norm
  bool injected = false;        ///< failure forced by a fault-injection hook
  std::vector<HomotopyStage> homotopy_trail;
  std::vector<RecoveryAttempt> recovery_trail;

  /// Render the full diagnostic block (used for what()).
  std::string format(SolverErrorKind kind, const std::string& message) const {
    std::string s = "SolverError[";
    s += to_string(kind);
    s += "] ";
    if (!where.empty()) {
      s += where;
      s += ": ";
    }
    s += message;
    if (std::isfinite(time)) s += " (t=" + std::to_string(time) + ")";
    if (node >= 0) {
      s += " [node " + std::to_string(node);
      if (!node_name.empty()) s += " '" + node_name + "'";
      s += "]";
    }
    if (newton_iterations > 0)
      s += "; newton iterations=" + std::to_string(newton_iterations);
    if (std::isfinite(residual)) s += ", residual=" + std::to_string(residual);
    if (std::isfinite(max_dv)) s += ", max_dv=" + std::to_string(max_dv);
    if (injected) s += " [fault-injected]";
    if (!homotopy_trail.empty()) {
      s += "; homotopy:";
      for (const HomotopyStage& st : homotopy_trail) {
        s += " ";
        s += st.name;
        s += st.converged ? "(ok" : "(stalled";
        s += ", it=" + std::to_string(st.iterations);
        s += ", res=" + std::to_string(st.residual) + ")";
      }
    }
    if (!recovery_trail.empty()) {
      s += "; recovery:";
      for (const RecoveryAttempt& a : recovery_trail) {
        s += " ";
        s += a.rung;
        s += a.succeeded ? "(ok)" : "(failed)";
      }
    }
    return s;
  }
};

/// The typed solver failure. Copyable (so a batch driver can store it per
/// sample) and cheap to rethrow.
class SolverError : public std::runtime_error {
 public:
  SolverError(SolverErrorKind kind, const std::string& message,
              SolverDiagnostics diagnostics = {})
      : std::runtime_error(diagnostics.format(kind, message)),
        kind_(kind),
        diagnostics_(std::move(diagnostics)) {}

  SolverErrorKind kind() const { return kind_; }
  bool retryable() const { return is_retryable(kind_); }
  const SolverDiagnostics& diagnostics() const { return diagnostics_; }

 private:
  SolverErrorKind kind_;
  SolverDiagnostics diagnostics_;
};

}  // namespace ssnkit::support
