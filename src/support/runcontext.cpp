#include "support/runcontext.hpp"

#include "support/crashclean.hpp"

#include <atomic>
#include <csignal>
#include <cstdlib>

namespace ssnkit::support {

namespace {

// The handler may only touch lock-free atomics; RunContext::request_cancel
// is a single atomic store, which keeps the whole path async-signal-safe.
std::atomic<RunContext*> g_signal_ctx{nullptr};
std::atomic<int> g_last_signal{0};

extern "C" void lifecycle_signal_handler(int sig) {
  RunContext* ctx = g_signal_ctx.load(std::memory_order_acquire);
  if (ctx == nullptr) return;
  if (ctx->cancel_requested()) {
    // Second signal: the user really means it. _Exit runs no destructors,
    // so first unlink any in-flight atomic-write temporaries and SIGKILL any
    // supervised worker processes (both async-signal-safe) — an interrupted
    // run must leak neither `.tmp` artifacts nor orphan workers. 128+sig is
    // the conventional killed-by-signal status.
    crash_unlink_all();
    crash_kill_all();
    std::_Exit(128 + sig);
  }
  g_last_signal.store(sig, std::memory_order_relaxed);
  ctx->request_cancel();
}

#if defined(_WIN32)
using SavedHandler = void (*)(int);
SavedHandler g_old_int = SIG_DFL;
SavedHandler g_old_term = SIG_DFL;

void install_handlers() {
  g_old_int = std::signal(SIGINT, lifecycle_signal_handler);
  g_old_term = std::signal(SIGTERM, lifecycle_signal_handler);
}
void restore_handlers() {
  std::signal(SIGINT, g_old_int);
  std::signal(SIGTERM, g_old_term);
}
#else
struct sigaction g_old_int;
struct sigaction g_old_term;

void install_handlers() {
  struct sigaction sa = {};
  sa.sa_handler = lifecycle_signal_handler;
  sigemptyset(&sa.sa_mask);
  // SA_RESTART: interrupted syscalls (worker joins, file writes) resume;
  // the workers observe the cancellation through the token, not EINTR.
  sa.sa_flags = SA_RESTART;
  sigaction(SIGINT, &sa, &g_old_int);
  sigaction(SIGTERM, &sa, &g_old_term);
}
void restore_handlers() {
  sigaction(SIGINT, &g_old_int, nullptr);
  sigaction(SIGTERM, &g_old_term, nullptr);
}
#endif

}  // namespace

ScopedSignalCancel::ScopedSignalCancel(RunContext& ctx) {
  g_last_signal.store(0, std::memory_order_relaxed);
  // Publish the context before installing the handlers so a signal arriving
  // mid-constructor sees either no handler or a valid context.
  g_signal_ctx.store(&ctx, std::memory_order_release);
  install_handlers();
}

ScopedSignalCancel::~ScopedSignalCancel() {
  restore_handlers();
  g_signal_ctx.store(nullptr, std::memory_order_release);
}

int ScopedSignalCancel::last_signal() {
  return g_last_signal.load(std::memory_order_relaxed);
}

}  // namespace ssnkit::support
