// Crash-safe file replacement: write to a temporary file in the target's
// directory, fsync it, then rename() over the destination. A reader (or a
// resumed job) therefore sees either the complete old content or the
// complete new content — never a truncated half-write, which is the
// property the batch journal and the CSV outputs rely on.
//
// Lives in the support layer (the bottom of the include DAG — see
// docs/STATIC_ANALYSIS.md, SSN-L010) so the checkpoint journal can use it
// without reaching up into the io layer; io re-exports IoError as
// io::IoError for its own stream/file failures.
#pragma once

#include <stdexcept>
#include <string>

namespace ssnkit::support {

/// Typed stream/file failure. Distinguishes "could not open" from "wrote
/// less than asked" (disk full, quota, yanked mount) — the latter used to
/// truncate CSV output silently.
class IoError : public std::runtime_error {
 public:
  enum class Kind { kOpenFailed, kWriteFailed, kReadFailed };

  IoError(Kind kind, std::string path, const std::string& message);

  Kind kind() const { return kind_; }
  const std::string& path() const { return path_; }

 private:
  Kind kind_;
  std::string path_;
};

inline const char* to_string(IoError::Kind k) {
  switch (k) {
    case IoError::Kind::kOpenFailed: return "open-failed";
    case IoError::Kind::kWriteFailed: return "write-failed";
    case IoError::Kind::kReadFailed: return "read-failed";
  }
  return "unknown";
}

/// Atomically replace `path` with `contents`. The temporary file lives in
/// the same directory (rename across filesystems is not atomic) and is
/// unlinked on any failure. Throws IoError{kOpenFailed} when the temporary
/// cannot be created and IoError{kWriteFailed} when writing, syncing, or
/// renaming fails.
void write_file_atomic(const std::string& path, const std::string& contents);

}  // namespace ssnkit::support
