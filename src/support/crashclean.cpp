#include "support/crashclean.hpp"

#include <atomic>
#include <cstring>

#if !defined(_WIN32)
#include <csignal>
#include <sys/types.h>
#include <unistd.h>
#else
#include <cstdio>
#endif

namespace ssnkit::support {

namespace {

// Slot states. kClaimed marks a slot whose path is still being copied in:
// crash_unlink_all skips it (a torn path must never reach unlink).
constexpr int kFree = 0;
constexpr int kClaimed = 1;
constexpr int kLive = 2;

constexpr int kMaxPath = 512;

struct Slot {
  std::atomic<int> state{kFree};
  char path[kMaxPath];
};

Slot g_slots[kCrashUnlinkSlots];

// Worker-pid table: a slot is live when it holds a positive pid. A single
// atomic<long> per slot suffices (no torn-path window like the unlink
// table): one CAS from 0 both claims and publishes.
std::atomic<long> g_kill_slots[kCrashKillSlots];

}  // namespace

int crash_unlink_register(const char* path) noexcept {
  if (path == nullptr) return -1;
  const std::size_t len = std::strlen(path);
  if (len == 0 || len >= kMaxPath) return -1;
  for (int i = 0; i < kCrashUnlinkSlots; ++i) {
    int expected = kFree;
    if (!g_slots[i].state.compare_exchange_strong(expected, kClaimed,
                                                  std::memory_order_acq_rel))
      continue;
    std::memcpy(g_slots[i].path, path, len + 1);
    g_slots[i].state.store(kLive, std::memory_order_release);
    return i;
  }
  return -1;  // table full: proceed without crash coverage
}

void crash_unlink_unregister(int slot) noexcept {
  if (slot < 0 || slot >= kCrashUnlinkSlots) return;
  g_slots[slot].state.store(kFree, std::memory_order_release);
}

void crash_unlink_all() noexcept {
  for (Slot& s : g_slots) {
    if (s.state.load(std::memory_order_acquire) != kLive) continue;
#if !defined(_WIN32)
    ::unlink(s.path);  // async-signal-safe per POSIX
#else
    std::remove(s.path);
#endif
  }
}

int crash_kill_register(long pid) noexcept {
  if (pid <= 0) return -1;
  for (int i = 0; i < kCrashKillSlots; ++i) {
    long expected = 0;
    if (g_kill_slots[i].compare_exchange_strong(expected, pid,
                                                std::memory_order_acq_rel))
      return i;
  }
  return -1;  // table full: proceed without crash coverage
}

void crash_kill_unregister(int slot) noexcept {
  if (slot < 0 || slot >= kCrashKillSlots) return;
  g_kill_slots[slot].store(0, std::memory_order_release);
}

void crash_kill_all() noexcept {
#if !defined(_WIN32)
  for (std::atomic<long>& s : g_kill_slots) {
    const long pid = s.load(std::memory_order_acquire);
    if (pid > 0) ::kill(pid_t(pid), SIGKILL);  // async-signal-safe per POSIX
  }
#endif
}

}  // namespace ssnkit::support
