// Job lifecycle control for long-running work: cooperative cancellation, a
// monotonic wall-clock deadline, and an item budget, carried by one
// RunContext that the CLI threads through the batch drivers down into the
// transient engine's accepted-step loop.
//
// The contract is cooperative: nothing is ever killed. Workers poll
// stop_requested() at natural boundaries (the parallel runner before
// claiming an item, the engine at the top of each accepted step) and wind
// down with their partial results intact. That is what lets an interrupted
// batch flush a journal and report "how far it got" instead of losing work.
//
// Three stop sources compose:
//   - request_cancel()  an external stop (the SIGINT/SIGTERM watcher, a
//                       test, a supervising process). Async-signal-safe.
//   - deadline          a steady_clock time point; expiry is observed by
//                       the next stop_requested() poll.
//   - item budget       a cap on *newly started* batch items, consumed by
//                       try_start_item(). Deliberately NOT reported by
//                       stop_requested(): an exhausted budget stops new
//                       items from starting but lets in-flight transients
//                       run to completion, so the set of finished items
//                       stays deterministic.
//
// Thread-safety: request_cancel()/stop_requested()/try_start_item() are
// safe from any thread (and request_cancel() from a signal handler).
// set_deadline()/set_timeout()/set_item_budget() must happen-before the
// workers start polling — configure the context, then launch the batch.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <limits>

namespace ssnkit::support {

/// Why a job stopped early. kItemBudget is only ever reported by
/// stop_reason() (driver-level accounting); stop_requested() — what the
/// engine polls — reports kCancelled/kDeadlineExpired alone, see above.
enum class StopReason {
  kNone = 0,
  kCancelled,        ///< request_cancel() was called (signal, test, parent)
  kDeadlineExpired,  ///< the monotonic deadline passed
  kItemBudget,       ///< the item budget ran out (no new items started)
};

inline const char* to_string(StopReason reason) {
  switch (reason) {
    case StopReason::kNone: return "none";
    case StopReason::kCancelled: return "cancelled";
    case StopReason::kDeadlineExpired: return "deadline-expired";
    case StopReason::kItemBudget: return "item-budget";
  }
  return "unknown";
}

class RunContext {
 public:
  RunContext() = default;
  RunContext(const RunContext&) = delete;
  RunContext& operator=(const RunContext&) = delete;

  /// Trip the cancellation token. Async-signal-safe (a single atomic
  /// store), idempotent, irreversible for the lifetime of the context.
  void request_cancel() noexcept {
    cancelled_.store(true, std::memory_order_release);
  }
  bool cancel_requested() const noexcept {
    return cancelled_.load(std::memory_order_acquire);
  }

  /// Absolute monotonic deadline; expiry surfaces via stop_requested().
  void set_deadline(std::chrono::steady_clock::time_point deadline) {
    deadline_ns_.store(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            deadline.time_since_epoch())
            .count(),
        std::memory_order_release);
  }
  /// Deadline `seconds` from now; <= 0 is already expired.
  void set_timeout(double seconds) {
    set_deadline(std::chrono::steady_clock::now() +
                 std::chrono::nanoseconds(static_cast<std::int64_t>(
                     seconds * 1e9)));
  }
  bool has_deadline() const {
    return deadline_ns_.load(std::memory_order_acquire) != kNoDeadline;
  }

  /// The poll: cancellation wins over deadline expiry; budget exhaustion is
  /// intentionally absent (see the header comment). Cheap enough for a
  /// per-timestep poll — one relaxed-ish atomic load, plus one clock read
  /// only when a deadline is set.
  StopReason stop_requested() const {
    if (cancel_requested()) return StopReason::kCancelled;
    const std::int64_t dl = deadline_ns_.load(std::memory_order_acquire);
    if (dl != kNoDeadline &&
        std::chrono::steady_clock::now().time_since_epoch() >=
            std::chrono::nanoseconds(dl))
      return StopReason::kDeadlineExpired;
    return StopReason::kNone;
  }

  /// Cap on newly started items; negative = unlimited (the default).
  void set_item_budget(long long items) {
    if (items < 0) {
      budget_limited_.store(false, std::memory_order_release);
      return;
    }
    budget_remaining_.store(items, std::memory_order_relaxed);
    budget_limited_.store(true, std::memory_order_release);
  }

  /// Claim the right to start one new batch item. False when the context is
  /// stopped or the budget is spent — the caller must then skip the item
  /// (it is "not run", not "failed"). Items restored from a journal must
  /// not call this: resumed work is free. Const because drivers hold the
  /// context through a const pointer: claiming decrements shared coordination
  /// state (mutable atomics), not the job's configuration.
  bool try_start_item() const {
    if (stop_requested() != StopReason::kNone) return false;
    if (!budget_limited_.load(std::memory_order_acquire)) return true;
    if (budget_remaining_.fetch_sub(1, std::memory_order_acq_rel) > 0)
      return true;
    budget_hit_.store(true, std::memory_order_release);
    return false;
  }

  /// Driver-level verdict after the batch joins: why (if at all) the run
  /// ended early. Unlike stop_requested(), this does report kItemBudget.
  StopReason stop_reason() const {
    const StopReason sr = stop_requested();
    if (sr != StopReason::kNone) return sr;
    if (budget_hit_.load(std::memory_order_acquire))
      return StopReason::kItemBudget;
    return StopReason::kNone;
  }

 private:
  static constexpr std::int64_t kNoDeadline =
      std::numeric_limits<std::int64_t>::max();

  std::atomic<bool> cancelled_{false};
  std::atomic<std::int64_t> deadline_ns_{kNoDeadline};
  std::atomic<bool> budget_limited_{false};
  mutable std::atomic<long long> budget_remaining_{0};
  mutable std::atomic<bool> budget_hit_{false};
};

/// RAII SIGINT/SIGTERM watcher: while alive, the first signal trips the
/// RunContext's cancellation token (and is recorded for the exit message);
/// a second signal hard-exits with the conventional 128+sig status, so a
/// wedged job can still be killed from the keyboard. Previous handlers are
/// restored on destruction. Only one instance may be alive at a time —
/// the CLI installs it once around each batch command.
class ScopedSignalCancel {
 public:
  explicit ScopedSignalCancel(RunContext& ctx);
  ~ScopedSignalCancel();
  ScopedSignalCancel(const ScopedSignalCancel&) = delete;
  ScopedSignalCancel& operator=(const ScopedSignalCancel&) = delete;

  /// The signal number that tripped the token (0 = none yet). Reset on
  /// every install.
  static int last_signal();
};

}  // namespace ssnkit::support
