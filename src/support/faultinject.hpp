// Deterministic fault injection for the solver kernels.
//
// The resilience layer (sim/recovery.hpp) claims that every solver failure
// either recovers up the ladder or surfaces as a typed SolverError — never a
// crash, hang, or silent NaN. That claim is only testable if failures can be
// produced on demand. This header plants seeded, per-site hooks at the four
// failure classes the engine can hit:
//
//   kNewtonDivergence  force solve_newton to report non-convergence
//   kSingularLu        force the (dense or sparse) LU to report singularity
//   kNanResidual       poison one entry of the Newton update with NaN
//   kStepUnderflow     force the adaptive timestep below dt_min
//
// plus three *result-corruption* classes the verify layer must catch (they
// damage data rather than forcing an error path, which is exactly the
// "silently wrong" failure mode the TrustReport machinery exists to stop):
//
//   kFactorBitFlip     flip one bit of a stored LU factor value, so a later
//                      solve returns a confidently wrong vector
//   kCacheRot          rot one byte of a served result-cache payload
//   kJournalTruncate   drop the tail of a journal value mid-record
//
// plus three *process-fatal* classes the serve supervisor must contain (they
// kill or wedge the worker process itself, which is exactly the failure mode
// process isolation exists for; the sites live in serve/worker.cpp and are
// never queried by the parent daemon):
//
//   kWorkerCrash       worker calls std::abort() mid-request
//   kWorkerHang        worker spins without polling its RunContext, so only
//                      the supervisor's SIGKILL watchdog can end it
//   kWorkerOom         worker runs a bounded allocation burst that trips its
//                      RLIMIT_AS cap and dies of the uncaught bad_alloc
//
// The hooks compile to a literal `false` unless SSNKIT_FAULT_INJECTION is
// defined (the `fault-injection` CMake preset turns it on globally), so
// release binaries carry zero overhead and zero attack surface.
//
// Determinism: each (thread, site) pair owns a std::mt19937 stream derived
// from the armed plan's seed. Identical plan + identical workload =>
// identical fire sequence, which is what lets the test suite assert
// bit-for-bit reproducibility across runs.
//
// Threading: arm()/disarm() must happen while no solver is running (tests
// and batch drivers arm around each scenario), but should_fire() is safe to
// call concurrently from the parallel batch runner: per-thread query state
// lives in thread_local storage and the aggregate counters are atomics.
// For batches, wrap each item's solver work in a FaultSampleScope(index):
// every site's stream is then re-derived from (plan seed, item index), so
// which faults an item sees depends only on its index — never on which
// worker thread ran it or in what order. That is what keeps fault-injected
// parallel batches bit-identical to serial ones.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <mutex>
#include <random>
#include <string>

namespace ssnkit::support {

enum class FaultKind : int {
  kNewtonDivergence = 0,
  kSingularLu = 1,
  kNanResidual = 2,
  kStepUnderflow = 3,
  kFactorBitFlip = 4,
  kCacheRot = 5,
  kJournalTruncate = 6,
  kWorkerCrash = 7,
  kWorkerHang = 8,
  kWorkerOom = 9,
};

inline constexpr int kFaultKindCount = 10;

inline const char* to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kNewtonDivergence: return "newton-divergence";
    case FaultKind::kSingularLu: return "singular-lu";
    case FaultKind::kNanResidual: return "nan-residual";
    case FaultKind::kStepUnderflow: return "step-underflow";
    case FaultKind::kFactorBitFlip: return "factor-bit-flip";
    case FaultKind::kCacheRot: return "cache-rot";
    case FaultKind::kJournalTruncate: return "journal-truncate";
    case FaultKind::kWorkerCrash: return "worker-crash";
    case FaultKind::kWorkerHang: return "worker-hang";
    case FaultKind::kWorkerOom: return "worker-oom";
  }
  return "unknown";
}

/// When and how often an armed site fires. Two trigger modes compose:
/// `fire_on_nth` (exact query index, 1-based) for surgical single faults and
/// `probability` (seeded Bernoulli per query) for soak testing. `max_fires`
/// caps the total, which is how tests force "attempt 1 fails, attempt 2
/// runs clean" ladder walks.
struct FaultPlan {
  unsigned seed = 1;
  double probability = 0.0;
  std::size_t fire_on_nth = 0;  ///< 0 = disabled
  std::size_t max_fires = std::numeric_limits<std::size_t>::max();
  /// Restrict firing to one batch item: when >= 0, the site is live only
  /// inside a FaultSampleScope whose index equals this value (and dead
  /// outside any scope). Because every sample owns its own trigger stream,
  /// this is how a test injects a failure into exactly one Monte Carlo
  /// sample while the remaining samples stay bit-identical to an
  /// uninjected run.
  int only_sample = -1;
};

class FaultInjector {
 public:
  static FaultInjector& instance() {
    static FaultInjector injector;
    return injector;
  }

  void arm(FaultKind kind, const FaultPlan& plan) {
    std::lock_guard<std::mutex> lock(mu_);
    Shared& s = shared_[std::size_t(kind)];
    s.plan = plan;
    s.armed.store(true, std::memory_order_relaxed);
    queries_[std::size_t(kind)].store(0, std::memory_order_relaxed);
    fires_[std::size_t(kind)].store(0, std::memory_order_relaxed);
    // Publish the new plan: thread-local states refresh (reseed + zero
    // their counters) when they observe the new epoch.
    epoch_.fetch_add(1, std::memory_order_release);
  }

  void disarm(FaultKind kind) {
    std::lock_guard<std::mutex> lock(mu_);
    shared_[std::size_t(kind)].armed.store(false, std::memory_order_relaxed);
    epoch_.fetch_add(1, std::memory_order_release);
  }

  void disarm_all() {
    std::lock_guard<std::mutex> lock(mu_);
    for (Shared& s : shared_) s.armed.store(false, std::memory_order_relaxed);
    epoch_.fetch_add(1, std::memory_order_release);
  }

  /// Queried by the SSN_FAULT_POINT macro at every instrumented site.
  bool should_fire(FaultKind kind) {
    Local& st = local();
    refresh(st);
    const std::size_t k = std::size_t(kind);
    if (!st.sites[k].armed) return false;
    LocalSite& s = st.sites[k];
    // Sample-targeted plans are dead everywhere but the matching scope —
    // equivalent to the site being disarmed there, so nothing is counted.
    if (s.plan.only_sample >= 0 &&
        (!st.scoped || st.sample != std::size_t(s.plan.only_sample)))
      return false;
    ++s.queries;
    queries_[k].fetch_add(1, std::memory_order_relaxed);
    if (s.fires >= s.plan.max_fires) return false;
    bool fire = false;
    if (s.plan.fire_on_nth > 0 && s.queries == s.plan.fire_on_nth) fire = true;
    if (!fire && s.plan.probability > 0.0) {
      std::uniform_real_distribution<double> u(0.0, 1.0);
      if (u(s.rng) < s.plan.probability) fire = true;
    }
    if (fire) {
      ++s.fires;
      fires_[k].fetch_add(1, std::memory_order_relaxed);
    }
    return fire;
  }

  /// Total queries/fires across all threads since the site was last armed.
  std::size_t query_count(FaultKind kind) const {
    return queries_[std::size_t(kind)].load(std::memory_order_relaxed);
  }
  std::size_t fire_count(FaultKind kind) const {
    return fires_[std::size_t(kind)].load(std::memory_order_relaxed);
  }

 private:
  friend class FaultSampleScope;

  struct Shared {
    std::atomic<bool> armed{false};
    FaultPlan plan;  // guarded by mu_; published via epoch_
  };
  /// Per-thread view of one site: a private RNG stream plus the query/fire
  /// counters fire_on_nth and max_fires trigger on.
  struct LocalSite {
    bool armed = false;
    FaultPlan plan;
    std::mt19937 rng;
    std::size_t queries = 0;
    std::size_t fires = 0;
  };
  struct Local {
    std::uint64_t epoch = 0;  ///< 0 forces a refresh on first use
    bool scoped = false;
    std::size_t sample = 0;
    std::array<LocalSite, kFaultKindCount> sites;
  };

  static Local& local() {
    thread_local Local st;
    return st;
  }

  /// Sync this thread's view with the armed plans. Reseeds every stream and
  /// zeroes the per-thread counters; inside a FaultSampleScope the seed is
  /// mixed with the sample index so each item gets its own stream.
  void refresh(Local& st) {
    const std::uint64_t e = epoch_.load(std::memory_order_acquire);
    if (st.epoch == e) return;
    std::lock_guard<std::mutex> lock(mu_);
    for (std::size_t k = 0; k < std::size_t(kFaultKindCount); ++k) {
      LocalSite& s = st.sites[k];
      s.armed = shared_[k].armed.load(std::memory_order_relaxed);
      s.plan = shared_[k].plan;
      unsigned seed = s.plan.seed;
      if (st.scoped)
        seed += 0x9e3779b9u * (unsigned(st.sample) + 1u);
      s.rng.seed(seed);
      s.queries = 0;
      s.fires = 0;
    }
    st.epoch = epoch_.load(std::memory_order_relaxed);
  }

  mutable std::mutex mu_;
  std::atomic<std::uint64_t> epoch_{1};
  std::array<Shared, kFaultKindCount> shared_;
  std::array<std::atomic<std::size_t>, kFaultKindCount> queries_{};
  std::array<std::atomic<std::size_t>, kFaultKindCount> fires_{};
};

/// Map a fault-kind name (the to_string spelling) back to its enum value.
inline bool fault_kind_from_name(const std::string& name, FaultKind& out) {
  for (int k = 0; k < kFaultKindCount; ++k) {
    if (name == to_string(FaultKind(k))) {
      out = FaultKind(k);
      return true;
    }
  }
  return false;
}

/// Arm fault sites from a compact plan string, the chaos harness's way of
/// configuring a *daemon process* it cannot call arm() in:
///
///   "seed=7,factor-bit-flip=0.01,cache-rot=0.005,journal-truncate=0.01"
///
/// Comma-separated `key=value` entries: `seed=N` sets the shared plan seed
/// (applies to every site armed after it; default 1), and `<kind>=<p>` arms
/// that site with probability p. A key may carry an `@SAMPLE` suffix —
/// `worker-crash@13=1` — which sets FaultPlan::only_sample, so the site is
/// live only inside a FaultSampleScope with that index. Serve workers scope
/// each request by its driver count, which is how the chaos soak makes one
/// request shape a deterministic poison pill while the rest of the traffic
/// stays clean. Returns the number of sites armed; malformed entries are
/// skipped rather than fatal (a soak harness wants best-effort arming, and
/// the site counters reveal what actually fired). Number parsing is
/// hand-rolled: the strto* family is banned outside the hardened io parsers
/// (SSN-L007), and plan strings only need unsigned decimals and simple
/// fractions.
inline std::size_t arm_from_plan_string(const std::string& text) {
  const auto parse_simple_double = [](const std::string& s, double& out) {
    if (s.empty()) return false;
    double value = 0.0;
    std::size_t i = 0;
    bool any = false;
    for (; i < s.size() && s[i] >= '0' && s[i] <= '9'; ++i) {
      value = value * 10.0 + double(s[i] - '0');
      any = true;
    }
    if (i < s.size() && s[i] == '.') {
      ++i;
      double scale = 0.1;
      for (; i < s.size() && s[i] >= '0' && s[i] <= '9'; ++i) {
        value += double(s[i] - '0') * scale;
        scale *= 0.1;
        any = true;
      }
    }
    if (!any || i != s.size()) return false;
    out = value;
    return true;
  };
  std::size_t armed = 0;
  unsigned seed = 1;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    std::size_t comma = text.find(',', pos);
    if (comma == std::string::npos) comma = text.size();
    const std::string entry = text.substr(pos, comma - pos);
    pos = comma + 1;
    const std::size_t eq = entry.find('=');
    if (eq == std::string::npos || eq == 0) continue;
    std::string key = entry.substr(0, eq);
    const std::string value = entry.substr(eq + 1);
    double number = 0.0;
    if (!parse_simple_double(value, number)) continue;
    if (key == "seed") {
      seed = unsigned(number);
      continue;
    }
    // Optional `@SAMPLE` suffix restricts the site to one scope index.
    int only_sample = -1;
    const std::size_t at = key.find('@');
    if (at != std::string::npos) {
      double sample = 0.0;
      if (!parse_simple_double(key.substr(at + 1), sample)) continue;
      if (sample != double(int(sample)) || sample < 0.0) continue;
      only_sample = int(sample);
      key.resize(at);
    }
    FaultKind kind;
    if (!fault_kind_from_name(key, kind)) continue;
    if (!(number > 0.0 && number <= 1.0)) continue;
    FaultPlan plan;
    plan.seed = seed;
    plan.probability = number;
    plan.only_sample = only_sample;
    FaultInjector::instance().arm(kind, plan);
    ++armed;
  }
  return armed;
}

/// RAII marker for one batch item: while alive, this thread's fault streams
/// are derived from (plan seed, sample index) instead of the plain plan
/// seed, and the per-thread query/fire counters restart from zero. Entering
/// and leaving the scope both force a stream refresh, so work outside any
/// scope is unaffected. Cheap enough to use unconditionally (it only touches
/// thread-local state); it does nothing observable unless a site is armed.
class FaultSampleScope {
 public:
  explicit FaultSampleScope(std::size_t sample_index) {
    FaultInjector::Local& st = FaultInjector::local();
    st.scoped = true;
    st.sample = sample_index;
    st.epoch = 0;  // force re-derivation on the next query
  }
  ~FaultSampleScope() {
    FaultInjector::Local& st = FaultInjector::local();
    st.scoped = false;
    st.sample = 0;
    st.epoch = 0;
  }
  FaultSampleScope(const FaultSampleScope&) = delete;
  FaultSampleScope& operator=(const FaultSampleScope&) = delete;
};

}  // namespace ssnkit::support

#if defined(SSNKIT_FAULT_INJECTION)
#define SSN_FAULT_POINT(kind) \
  (::ssnkit::support::FaultInjector::instance().should_fire(kind))
namespace ssnkit::support {
inline constexpr bool kFaultInjectionEnabled = true;
}
#else
/// Compiled out: the kind expression is discarded unevaluated.
#define SSN_FAULT_POINT(kind) false
namespace ssnkit::support {
inline constexpr bool kFaultInjectionEnabled = false;
}
#endif
