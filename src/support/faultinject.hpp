// Deterministic fault injection for the solver kernels.
//
// The resilience layer (sim/recovery.hpp) claims that every solver failure
// either recovers up the ladder or surfaces as a typed SolverError — never a
// crash, hang, or silent NaN. That claim is only testable if failures can be
// produced on demand. This header plants seeded, per-site hooks at the four
// failure classes the engine can hit:
//
//   kNewtonDivergence  force solve_newton to report non-convergence
//   kSingularLu        force the (dense or sparse) LU to report singularity
//   kNanResidual       poison one entry of the Newton update with NaN
//   kStepUnderflow     force the adaptive timestep below dt_min
//
// The hooks compile to a literal `false` unless SSNKIT_FAULT_INJECTION is
// defined (the `fault-injection` CMake preset turns it on globally), so
// release binaries carry zero overhead and zero attack surface.
//
// Determinism: each site owns its own std::mt19937 seeded at arm() time.
// Identical plan + identical workload => identical fire sequence, which is
// what lets the test suite assert bit-for-bit reproducibility across runs.
// The injector is intentionally NOT thread-safe: the solvers are
// single-threaded, and the tests arm/disarm around each scenario.
#pragma once

#include <array>
#include <cstddef>
#include <limits>
#include <random>

namespace ssnkit::support {

enum class FaultKind : int {
  kNewtonDivergence = 0,
  kSingularLu = 1,
  kNanResidual = 2,
  kStepUnderflow = 3,
};

inline constexpr int kFaultKindCount = 4;

inline const char* to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kNewtonDivergence: return "newton-divergence";
    case FaultKind::kSingularLu: return "singular-lu";
    case FaultKind::kNanResidual: return "nan-residual";
    case FaultKind::kStepUnderflow: return "step-underflow";
  }
  return "unknown";
}

/// When and how often an armed site fires. Two trigger modes compose:
/// `fire_on_nth` (exact query index, 1-based) for surgical single faults and
/// `probability` (seeded Bernoulli per query) for soak testing. `max_fires`
/// caps the total, which is how tests force "attempt 1 fails, attempt 2
/// runs clean" ladder walks.
struct FaultPlan {
  unsigned seed = 1;
  double probability = 0.0;
  std::size_t fire_on_nth = 0;  ///< 0 = disabled
  std::size_t max_fires = std::numeric_limits<std::size_t>::max();
};

class FaultInjector {
 public:
  static FaultInjector& instance() {
    static FaultInjector injector;
    return injector;
  }

  void arm(FaultKind kind, const FaultPlan& plan) {
    Site& s = site(kind);
    s.armed = true;
    s.plan = plan;
    s.rng.seed(plan.seed);
    s.queries = 0;
    s.fires = 0;
  }

  void disarm(FaultKind kind) { site(kind).armed = false; }

  void disarm_all() {
    for (Site& s : sites_) s.armed = false;
  }

  /// Queried by the SSN_FAULT_POINT macro at every instrumented site.
  bool should_fire(FaultKind kind) {
    Site& s = site(kind);
    if (!s.armed) return false;
    ++s.queries;
    if (s.fires >= s.plan.max_fires) return false;
    bool fire = false;
    if (s.plan.fire_on_nth > 0 && s.queries == s.plan.fire_on_nth) fire = true;
    if (!fire && s.plan.probability > 0.0) {
      std::uniform_real_distribution<double> u(0.0, 1.0);
      if (u(s.rng) < s.plan.probability) fire = true;
    }
    if (fire) ++s.fires;
    return fire;
  }

  std::size_t query_count(FaultKind kind) const { return site(kind).queries; }
  std::size_t fire_count(FaultKind kind) const { return site(kind).fires; }

 private:
  struct Site {
    bool armed = false;
    FaultPlan plan;
    std::mt19937 rng;
    std::size_t queries = 0;
    std::size_t fires = 0;
  };

  Site& site(FaultKind kind) { return sites_[std::size_t(kind)]; }
  const Site& site(FaultKind kind) const { return sites_[std::size_t(kind)]; }

  std::array<Site, kFaultKindCount> sites_;
};

}  // namespace ssnkit::support

#if defined(SSNKIT_FAULT_INJECTION)
#define SSN_FAULT_POINT(kind) \
  (::ssnkit::support::FaultInjector::instance().should_fire(kind))
namespace ssnkit::support {
inline constexpr bool kFaultInjectionEnabled = true;
}
#else
/// Compiled out: the kind expression is discarded unevaluated.
#define SSN_FAULT_POINT(kind) false
namespace ssnkit::support {
inline constexpr bool kFaultInjectionEnabled = false;
}
#endif
