#include "support/journal.hpp"

#include "support/atomic_file.hpp"
#include "support/faultinject.hpp"

#include <cstring>
#include <fstream>
#include <limits>
#include <sstream>
#include <utility>
#include <vector>

namespace ssnkit::support {

std::uint64_t double_bits(double value) {
  std::uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(value), "double must be 64-bit");
  std::memcpy(&bits, &value, sizeof(bits));
  return bits;
}

double bits_double(std::uint64_t bits) {
  double value = 0.0;
  std::memcpy(&value, &bits, sizeof(value));
  return value;
}

std::string hex_u64(std::uint64_t value) {
  static const char* kDigits = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[std::size_t(i)] = kDigits[value & 0xf];
    value >>= 4;
  }
  return out;
}

bool parse_hex_u64(const std::string& text, std::uint64_t& out) {
  // Exactly the writer's format: 16 lowercase digits, no prefix, no sign.
  if (text.size() != 16) return false;
  std::uint64_t v = 0;
  for (char c : text) {
    int digit;
    if (c >= '0' && c <= '9')
      digit = c - '0';
    else if (c >= 'a' && c <= 'f')
      digit = 10 + (c - 'a');
    else
      return false;
    v = (v << 4) | std::uint64_t(digit);
  }
  out = v;
  return true;
}

std::uint64_t fnv1a(const std::string& text) {
  std::uint64_t hash = 0xcbf29ce484222325ull;
  for (unsigned char c : text) {
    hash ^= std::uint64_t(c);
    hash *= 0x100000001b3ull;
  }
  return hash;
}

namespace {

/// Strict decimal integer parse, journal-local so the support layer does
/// not reach up into io's hardened parsers (SSN-L010 layering). Matches the
/// writer's own output exactly: an optional '-', then decimal digits — no
/// whitespace, hex, suffixes, or overflow past long long.
bool parse_decimal_ll(const std::string& text, long long& out) {
  if (text.empty()) return false;
  std::size_t i = 0;
  const bool negative = text[0] == '-';
  if (negative && text.size() == 1) return false;
  if (negative) i = 1;
  long long v = 0;
  for (; i < text.size(); ++i) {
    const char c = text[i];
    if (c < '0' || c > '9') return false;
    const int digit = c - '0';
    if (v > (std::numeric_limits<long long>::max() - digit) / 10) return false;
    v = v * 10 + digit;
  }
  out = negative ? -v : v;
  return true;
}

/// Strict non-negative decimal parse for indices/totals.
bool parse_size(const std::string& text, std::size_t& out) {
  long long v = 0;
  if (!parse_decimal_ll(text, v) || v < 0) return false;
  out = std::size_t(v);
  return true;
}

std::vector<std::string> split_fields(const std::string& line) {
  std::vector<std::string> fields;
  std::istringstream ss(line);
  std::string f;
  while (ss >> f) fields.push_back(std::move(f));
  return fields;
}

}  // namespace

BatchJournal::BatchJournal(std::string path, std::string kind,
                           std::uint64_t config_hash, std::size_t total)
    : path_(std::move(path)) {
  header_.kind = std::move(kind);
  header_.config_hash = config_hash;
  header_.total = total;
}

std::size_t BatchJournal::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return items_.size();
}

std::string BatchJournal::render_locked() const {
  std::string out = "ssnkit-journal v1\n";
  out += "kind " + header_.kind + "\n";
  out += "config " + hex_u64(header_.config_hash) + "\n";
  out += "total " + std::to_string(header_.total) + "\n";
  for (const auto& [index, rec] : items_) {
    out += "item " + std::to_string(index) + " " +
           std::to_string(rec.fidelity) + " " + hex_u64(rec.v_bits) + " " +
           std::to_string(rec.error_kind) + " " + std::to_string(rec.trust) +
           "\n";
  }
  return out;
}

void BatchJournal::record(std::size_t index, const PointRecord& record) {
  std::lock_guard<std::mutex> lock(mu_);
  items_[index] = record;
  std::string text = render_locked();
  // Fault-injection hook (kJournalTruncate): chop the tail of the last
  // record — newline included — to simulate the process dying mid-write.
  // The loader must surface this as a discarded torn record (SSN-W067)
  // and the item must simply re-run; silently resuming a half-written
  // value would be a false-verified result.
  if (kFaultInjectionEnabled && text.size() > 8 &&
      SSN_FAULT_POINT(FaultKind::kJournalTruncate))
    text.resize(text.size() - 5);
  // Full atomic rewrite per record: the file on disk is always a complete
  // journal, whatever instant the process dies at.
  write_file_atomic(path_, text);
}

BatchJournal::Loaded BatchJournal::load(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in)
    throw JournalError(JournalError::Kind::kOpenFailed, path,
                       "cannot open for reading");
  std::ostringstream slurp;
  slurp << in.rdbuf();
  const std::string text = slurp.str();
  // A record cut mid-write loses its trailing newline along with its tail,
  // so "last line AND no final newline" is exactly the torn-record
  // signature. Such a record is discarded with a warning instead of
  // aborting the resume; damage anywhere else still throws.
  const bool ends_with_newline = !text.empty() && text.back() == '\n';
  std::vector<std::string> lines;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) eol = text.size();
    lines.push_back(text.substr(pos, eol - pos));
    pos = eol + 1;
  }

  Loaded out;
  std::size_t line_no = 0;
  const auto bad = [&](const std::string& what) -> JournalError {
    return JournalError(JournalError::Kind::kBadFormat, path,
                        "line " + std::to_string(line_no) + ": " + what);
  };
  const auto next_line = [&]() -> const std::string& {
    if (line_no >= lines.size()) throw bad("truncated header");
    return lines[line_no++];
  };

  if (lines.empty() || next_line() != "ssnkit-journal v1") {
    line_no = 1;
    throw bad("missing 'ssnkit-journal v1' header");
  }

  // Fixed header fields, in order.
  const auto header_field = [&](const char* name) -> std::string {
    const std::vector<std::string> f = split_fields(next_line());
    if (f.size() != 2 || f[0] != name)
      throw bad(std::string("expected '") + name + " <value>'");
    return f[1];
  };
  out.header.version = 1;
  out.header.kind = header_field("kind");
  if (!parse_hex_u64(header_field("config"), out.header.config_hash))
    throw bad("config hash is not 16-digit hex");
  if (!parse_size(header_field("total"), out.header.total))
    throw bad("total is not a non-negative integer");

  while (line_no < lines.size()) {
    const std::string& line = lines[line_no++];
    if (line.empty()) continue;
    const bool torn_candidate = line_no == lines.size() && !ends_with_newline;
    const auto item_error = [&](const std::string& what) -> bool {
      if (!torn_candidate) throw bad(what);
      out.warnings.push_back("SSN-W067 journal '" + path +
                             "': discarded torn trailing record (line " +
                             std::to_string(line_no) + ": " + what +
                             "); the item will simply re-run");
      return true;  // discard the record, keep the rest of the load
    };
    const std::vector<std::string> f = split_fields(line);
    // 5 fields = pre-trust-layer journal (trust defaults to "not
    // recorded"); 6 fields = current format with the trust verdict.
    if ((f.size() != 5 && f.size() != 6) || f[0] != "item") {
      if (item_error(
              "expected 'item <index> <fidelity> <vbits> <errkind> [trust]'"))
        continue;
    }
    std::size_t index = 0;
    if (!parse_size(f[1], index) || index >= out.header.total) {
      if (item_error("item index out of range")) continue;
    }
    PointRecord rec;
    long long fid = 0;
    if (!parse_decimal_ll(f[2], fid) || fid < 0 ||
        fid > std::numeric_limits<int>::max()) {
      if (item_error("bad fidelity field")) continue;
    }
    rec.fidelity = int(fid);
    if (!parse_hex_u64(f[3], rec.v_bits)) {
      if (item_error("bad vbits field")) continue;
    }
    long long err = 0;
    if (!parse_decimal_ll(f[4], err) || err < -1 ||
        err > std::numeric_limits<int>::max()) {
      if (item_error("bad error-kind field")) continue;
    }
    rec.error_kind = int(err);
    if (f.size() == 6) {
      long long trust = 0;
      if (!parse_decimal_ll(f[5], trust) || trust < -1 ||
          trust > std::numeric_limits<int>::max()) {
        if (item_error("bad trust field")) continue;
      }
      rec.trust = int(trust);
    }
    out.items[index] = rec;
  }
  return out;
}

void BatchJournal::validate_against(const Loaded& loaded,
                                    const std::string& kind,
                                    std::uint64_t config_hash,
                                    std::size_t total,
                                    const std::string& path) {
  const auto mismatch = [&](const std::string& what) -> JournalError {
    return JournalError(JournalError::Kind::kMismatch, path, what);
  };
  if (loaded.header.kind != kind)
    throw mismatch("journal is for a '" + loaded.header.kind +
                   "' batch, this run is '" + kind + "'");
  if (loaded.header.config_hash != config_hash)
    throw mismatch(
        "configuration hash mismatch (the journal was written by a run with "
        "different parameters); re-run with the original options or drop "
        "--resume");
  if (loaded.header.total != total)
    throw mismatch("journal covers " + std::to_string(loaded.header.total) +
                   " items, this run has " + std::to_string(total));
}

}  // namespace ssnkit::support
