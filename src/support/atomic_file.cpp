#include "support/atomic_file.hpp"

#include "support/crashclean.hpp"

#include <cstdio>
#include <string>

#if defined(_WIN32)
#include <fstream>
#else
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#endif

namespace ssnkit::support {

IoError::IoError(Kind kind, std::string path, const std::string& message)
    : std::runtime_error("IoError[" + std::string(to_string(kind)) + "] " +
                         path + ": " + message),
      kind_(kind),
      path_(std::move(path)) {}

#if defined(_WIN32)

// Fallback without POSIX fsync/rename-over semantics: plain temp + rename.
// Windows is not a supported production target for the batch runners; this
// keeps the API portable for development builds.
void write_file_atomic(const std::string& path, const std::string& contents) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out)
      throw IoError(IoError::Kind::kOpenFailed, tmp, "cannot create temp file");
    out.write(contents.data(), std::streamsize(contents.size()));
    out.flush();
    if (!out) {
      std::remove(tmp.c_str());
      throw IoError(IoError::Kind::kWriteFailed, tmp, "short write");
    }
  }
  std::remove(path.c_str());
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw IoError(IoError::Kind::kWriteFailed, path, "rename failed");
  }
}

#else

namespace {

[[noreturn]] void fail_and_unlink(const std::string& tmp, int fd,
                                  IoError::Kind kind, const std::string& path,
                                  const std::string& what) {
  const int err = errno;
  if (fd >= 0) ::close(fd);
  ::unlink(tmp.c_str());
  throw IoError(kind, path, what + " (" + std::strerror(err) + ")");
}

/// Direct write for non-regular targets (/dev/null, a FIFO, ...): rename
/// would replace the special file with a regular one instead of writing
/// through it, and write errors such as ENOSPC on /dev/full would never be
/// observed.
void write_file_direct(const std::string& path, const std::string& contents) {
  const int fd = ::open(path.c_str(), O_WRONLY);
  if (fd < 0) {
    const int err = errno;
    throw IoError(IoError::Kind::kOpenFailed, path,
                  std::string("cannot open for writing (") +
                      std::strerror(err) + ")");
  }
  std::size_t off = 0;
  while (off < contents.size()) {
    const ssize_t n =
        ::write(fd, contents.data() + off, contents.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      const int err = errno;
      ::close(fd);
      throw IoError(IoError::Kind::kWriteFailed, path,
                    std::string("write failed (") + std::strerror(err) + ")");
    }
    off += std::size_t(n);
  }
  if (::close(fd) != 0) {
    const int err = errno;
    throw IoError(IoError::Kind::kWriteFailed, path,
                  std::string("close failed (") + std::strerror(err) + ")");
  }
}

}  // namespace

void write_file_atomic(const std::string& path, const std::string& contents) {
  // Temp + rename only makes sense for regular files; if the destination
  // already exists as something else (a character device, a FIFO) write
  // through it directly so the caller sees the device's own semantics.
  struct stat st {};
  if (::lstat(path.c_str(), &st) == 0 && !S_ISREG(st.st_mode)) {
    write_file_direct(path, contents);
    return;
  }
  // The temp file must live in the destination directory: rename() is only
  // atomic within one filesystem. The pid suffix keeps concurrent processes
  // writing the same target from clobbering each other's temporaries.
  std::string dir = ".";
  const std::size_t slash = path.find_last_of('/');
  if (slash != std::string::npos) dir = path.substr(0, slash + 1);
  const std::string tmp =
      path + ".tmp." + std::to_string(static_cast<long>(::getpid()));
  // Cover the temporary against a hard exit (second signal -> _Exit): the
  // lifecycle signal handler unlinks every registered path before dying, so
  // an interrupted run leaves no stray .tmp artifact. The guard's destructor
  // releases the slot on every normal path, success and throw alike.
  ScopedCrashUnlink crash_guard(tmp.c_str());

  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0)
    fail_and_unlink(tmp, -1, IoError::Kind::kOpenFailed, tmp,
                    "cannot create temp file");

  std::size_t off = 0;
  while (off < contents.size()) {
    const ssize_t n =
        ::write(fd, contents.data() + off, contents.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      fail_and_unlink(tmp, fd, IoError::Kind::kWriteFailed, path,
                      "short write to temp file");
    }
    off += std::size_t(n);
  }
  // Flush the data before the rename publishes the name: otherwise a crash
  // can leave a correctly named file with missing bytes — exactly the
  // torn-state the helper exists to rule out.
  if (::fsync(fd) != 0)
    fail_and_unlink(tmp, fd, IoError::Kind::kWriteFailed, path,
                    "fsync of temp file failed");
  if (::close(fd) != 0)
    fail_and_unlink(tmp, -1, IoError::Kind::kWriteFailed, path,
                    "close of temp file failed");
  if (std::rename(tmp.c_str(), path.c_str()) != 0)
    fail_and_unlink(tmp, -1, IoError::Kind::kWriteFailed, path,
                    "rename over destination failed");
  // Make the rename itself durable: without an fsync of the parent
  // directory the new name may not survive a power loss even though the
  // data blocks would (the data fsync above covers process crash only).
  // A failure here is not a torn file — the rename already happened — but
  // silently swallowing it would turn "durable" into "probably durable",
  // so it throws like every other step. EINVAL/ENOTSUP are tolerated:
  // some filesystems cannot fsync a directory handle at all, and on those
  // the rename is as durable as that filesystem ever gets.
  const int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dfd < 0) {
    const int err = errno;
    throw IoError(IoError::Kind::kWriteFailed, path,
                  std::string("cannot open parent directory '") + dir +
                      "' for fsync (" + std::strerror(err) + ")");
  }
  if (::fsync(dfd) != 0 && errno != EINVAL && errno != ENOTSUP) {
    const int err = errno;
    ::close(dfd);
    throw IoError(IoError::Kind::kWriteFailed, path,
                  std::string("fsync of parent directory '") + dir +
                      "' failed (" + std::strerror(err) + ")");
  }
  ::close(dfd);
}

#endif

}  // namespace ssnkit::support
