#include "support/subprocess.hpp"

#include <cerrno>
#include <cmath>
#include <csignal>
#include <cstring>

#include <poll.h>
#include <sys/resource.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

// Sanitizer runtimes (ASan/TSan shadow, allocator metadata) mmap regions
// far beyond any sane RLIMIT_AS cap, so installing one under a sanitizer
// build kills every worker at its first allocation ("Failed to mmap").
// The cap is a production containment knob; sanitizer presets exercise
// everything else about the supervisor and skip only this limit.
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define SSNKIT_SANITIZER_BUILD 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define SSNKIT_SANITIZER_BUILD 1
#endif
#endif

namespace ssnkit::support {

namespace {

// Runs in the child between fork and child_main. The parent may be
// multithreaded when a worker is respawned, so this path sticks to plain
// syscalls; the later child_main is safe because glibc reinstalls its
// malloc state across fork via atfork handlers.
void configure_child(const ChildLimits& limits) {
  // The daemon's terminal delivers SIGINT/SIGTERM to the whole foreground
  // process group; shutdown policy belongs to the supervisor, which kills
  // workers explicitly, so the workers themselves ignore both.
  ::signal(SIGINT, SIG_IGN);
  ::signal(SIGTERM, SIG_IGN);
  // Writes to a dying parent should fail with EPIPE, not kill the worker
  // before it can notice.
  ::signal(SIGPIPE, SIG_IGN);

  // A supervised crash is an expected event, not evidence to keep: no core.
  struct rlimit rl = {};
  rl.rlim_cur = 0;
  rl.rlim_max = 0;
  ::setrlimit(RLIMIT_CORE, &rl);

#if !defined(SSNKIT_SANITIZER_BUILD)
  if (limits.mem_limit_mb > 0) {
    const rlim_t bytes =
        static_cast<rlim_t>(limits.mem_limit_mb) * rlim_t{1024} * rlim_t{1024};
    rl.rlim_cur = bytes;
    rl.rlim_max = bytes;
    ::setrlimit(RLIMIT_AS, &rl);
  }
#endif
  if (limits.cpu_limit_s > 0.0) {
    // Default disposition for SIGXCPU (sent at the soft limit) terminates
    // the process; make sure no inherited handler can swallow it.
    ::signal(SIGXCPU, SIG_DFL);
    const rlim_t secs = static_cast<rlim_t>(std::ceil(limits.cpu_limit_s));
    rl.rlim_cur = secs;
    rl.rlim_max = secs + 1;  // hard limit is a straight SIGKILL backstop
    ::setrlimit(RLIMIT_CPU, &rl);
  }
}

}  // namespace

bool spawn_child(const std::function<int(int fd)>& child_main,
                 const ChildLimits& limits, ChildProcess& out,
                 std::string& err) {
  int fds[2] = {-1, -1};
  if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) != 0) {
    err = std::string("socketpair failed: ") + std::strerror(errno);
    return false;
  }
  const pid_t pid = ::fork();
  if (pid < 0) {
    err = std::string("fork failed: ") + std::strerror(errno);
    ::close(fds[0]);
    ::close(fds[1]);
    return false;
  }
  if (pid == 0) {
    ::close(fds[0]);
    configure_child(limits);
    const int rc = child_main(fds[1]);
    // _exit, not exit: the child must not flush the parent's inherited
    // stdio buffers or run its atexit handlers.
    ::_exit(rc);
  }
  ::close(fds[1]);
  out.pid = static_cast<long>(pid);
  out.fd = fds[0];
  err.clear();
  return true;
}

bool write_line(int fd, const std::string& line) {
  std::string framed = line;
  framed.push_back('\n');
  std::size_t off = 0;
  while (off < framed.size()) {
    const ssize_t n = ::send(fd, framed.data() + off, framed.size() - off,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

ReadLineStatus read_line(int fd, std::string& inbuf, std::string& line,
                         std::chrono::steady_clock::time_point deadline) {
  using Clock = std::chrono::steady_clock;
  for (;;) {
    const std::size_t nl = inbuf.find('\n');
    if (nl != std::string::npos) {
      line = inbuf.substr(0, nl);
      inbuf.erase(0, nl + 1);
      return ReadLineStatus::kLine;
    }
    const Clock::time_point now = Clock::now();
    if (now >= deadline) return ReadLineStatus::kTimeout;
    // Poll in bounded slices so a caller-side state change (the watchdog
    // killing the peer) surfaces within one slice as EOF, not at deadline.
    const auto remaining =
        std::chrono::duration_cast<std::chrono::milliseconds>(deadline - now);
    const int slice_ms =
        static_cast<int>(std::min<long long>(remaining.count() + 1, 100));
    struct pollfd pfd = {};
    pfd.fd = fd;
    pfd.events = POLLIN;
    const int pr = ::poll(&pfd, 1, slice_ms);
    if (pr < 0) {
      if (errno == EINTR) continue;
      return ReadLineStatus::kError;
    }
    if (pr == 0) continue;  // slice elapsed; re-check deadline
    char buf[4096];
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return ReadLineStatus::kError;
    }
    if (n == 0) return ReadLineStatus::kEof;
    inbuf.append(buf, static_cast<std::size_t>(n));
  }
}

bool wait_child(long pid, ExitStatus& out, bool block) {
  int status = 0;
  for (;;) {
    const pid_t r = ::waitpid(static_cast<pid_t>(pid), &status,
                              block ? 0 : WNOHANG);
    if (r < 0) {
      if (errno == EINTR) continue;
      // ECHILD: already reaped (or never ours). Report it as a plain exit
      // so callers cannot wedge on a pid that will never change state.
      out = ExitStatus{true, 0, 0};
      return true;
    }
    if (r == 0) return false;  // still running (WNOHANG)
    break;
  }
  if (WIFEXITED(status)) {
    out = ExitStatus{true, WEXITSTATUS(status), 0};
  } else if (WIFSIGNALED(status)) {
    out = ExitStatus{false, 0, WTERMSIG(status)};
  } else {
    out = ExitStatus{true, status, 0};
  }
  return true;
}

void kill_child(long pid) {
  if (pid > 0) ::kill(static_cast<pid_t>(pid), SIGKILL);
}

std::string describe_exit(const ExitStatus& status) {
  if (status.exited) return "exit " + std::to_string(status.code);
  const char* name = "";
  switch (status.sig) {
    case SIGKILL: name = " (SIGKILL)"; break;
    case SIGABRT: name = " (SIGABRT)"; break;
    case SIGSEGV: name = " (SIGSEGV)"; break;
    case SIGBUS: name = " (SIGBUS)"; break;
    case SIGFPE: name = " (SIGFPE)"; break;
    case SIGXCPU: name = " (SIGXCPU)"; break;
    case SIGTERM: name = " (SIGTERM)"; break;
    default: break;
  }
  return "signal " + std::to_string(status.sig) + name;
}

}  // namespace ssnkit::support
