// Async-signal-safe registry of temporary files to unlink on a hard exit.
//
// write_file_atomic publishes through a temp-then-rename dance; between
// creating the temporary and the rename there is a window where a hard exit
// (the second SIGINT/SIGTERM in ScopedSignalCancel, which calls _Exit) would
// leave a stray `.tmp.<pid>` file behind. The graceful paths already clean
// up — RAII unlinks on every exception — but _Exit runs no destructors, so
// the signal handler needs its own, async-signal-safe way to find the
// temporaries that are currently in flight.
//
// The registry is a fixed-size table of path slots. Registration and
// deregistration are lock-free (one CAS claims a slot, one release store
// publishes it); crash_unlink_all() walks the live slots calling ::unlink,
// which POSIX lists as async-signal-safe. The table deliberately does not
// grow: only a handful of atomic writes are ever in flight at once, and a
// full table simply means the newest temporary is not covered (registration
// fails soft) — losing cleanup coverage, never correctness.
#pragma once

namespace ssnkit::support {

/// Slots available for concurrently in-flight temporaries.
inline constexpr int kCrashUnlinkSlots = 32;

/// Register `path` for unlinking on a hard exit. Returns the slot handle,
/// or -1 when the table is full or the path is too long (the caller
/// proceeds without crash coverage). Safe from any thread.
int crash_unlink_register(const char* path) noexcept;

/// Release a slot obtained from crash_unlink_register. Passing -1 is a
/// no-op, so callers can unconditionally pair register/unregister.
void crash_unlink_unregister(int slot) noexcept;

/// Unlink every registered path. Async-signal-safe (atomic loads plus
/// ::unlink); called by the lifecycle signal handler just before _Exit.
/// Slots stay registered — the process is about to die anyway, and an
/// idempotent second pass is harmless.
void crash_unlink_all() noexcept;

/// Slots available for concurrently live supervised worker processes.
inline constexpr int kCrashKillSlots = 64;

/// Register a supervised child pid for SIGKILL on a hard exit, so a second
/// SIGINT/SIGTERM (_Exit, no destructors) cannot leak worker processes.
/// Returns the slot handle, or -1 when the table is full (the caller
/// proceeds without crash coverage). Safe from any thread.
int crash_kill_register(long pid) noexcept;

/// Release a slot obtained from crash_kill_register. Passing -1 is a no-op.
void crash_kill_unregister(int slot) noexcept;

/// SIGKILL every registered pid. Async-signal-safe (atomic loads plus
/// ::kill); called by the lifecycle signal handler just before _Exit.
void crash_kill_all() noexcept;

/// RAII pairing for the normal (non-crash) control flow.
class ScopedCrashUnlink {
 public:
  explicit ScopedCrashUnlink(const char* path) noexcept
      : slot_(crash_unlink_register(path)) {}
  ~ScopedCrashUnlink() { crash_unlink_unregister(slot_); }
  ScopedCrashUnlink(const ScopedCrashUnlink&) = delete;
  ScopedCrashUnlink& operator=(const ScopedCrashUnlink&) = delete;

  /// Whether the path actually got a slot (tests assert coverage).
  bool covered() const noexcept { return slot_ >= 0; }

 private:
  int slot_;
};

}  // namespace ssnkit::support
