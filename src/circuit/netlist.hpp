// A SPICE-flavoured netlist front end, so circuits (including the SSN
// testbench) can be described as text. Supported cards:
//
//   * comment lines start with '*' (or ';' / '//' anywhere in a line)
//   Rname n1 n2 value
//   Cname n1 n2 value [IC=v]
//   Lname n1 n2 value [IC=i]
//   Vname p  m  DC value | RAMP(v0 v1 tstart trise) |
//                PULSE(v0 v1 delay rise fall width period) |
//                PWL(t0 v0 t1 v1 ...) | SIN(off ampl freq [delay])
//   Iname p  m  <same shapes as V>
//   Gname op om cp cm gm                      (VCCS)
//   Dname a  c  [IS=value] [N=value]
//   Kname L1 L2 k                 (mutual coupling; fuses the two L cards)
//   Mname d  g  s  b  modelname [W=mult]
//   .model name ASDM  K=... LAMBDA=... VX=...
//   .model name ALPHA VDD=... VT0=... ALPHA=... ID0=... VD0=...
//                     [GAMMA=...] [PHI2F=...] [CLM=...]
//   .model name BSIM  KP=... VT0=... [GAMMA=...] [PHI2F=...] [THETA=...]
//                     [VSAT=...] [CLM=...]
//   (append PMOS to a .model line for a p-channel device)
//   .subckt NAME port1 [port2 ...] / .ends    (hierarchical blocks)
//   Xname node1 [node2 ...] NAME              (instantiate a subcircuit;
//                                              inner elements/nodes become
//                                              "Xname.<local>"; ground is
//                                              global)
//   .tran tstep tstop
//   .end
//
// Numbers accept SPICE suffixes: f p n u m k meg g t (case-insensitive).
//
// The parser runs in error-recovery mode: a bad card is diagnosed (with
// file/line/column, the offending token and a caret excerpt — see
// io/diagnostics.hpp) and skipped, so one pass reports *every* problem in
// the file. Resource guards (input size, line/token length, subcircuit
// nesting depth, expanded element count) bound what hostile input can make
// the parser do.
#pragma once

#include "circuit/circuit.hpp"
#include "io/diagnostics.hpp"

#include <optional>
#include <string>

namespace ssnkit::circuit {

struct TranDirective {
  double tstep = 0.0;
  double tstop = 0.0;
};

struct ParsedNetlist {
  Circuit circuit;
  std::optional<TranDirective> tran;
  std::string title;  ///< first line when it is not a card
};

/// Hard resource guards. Violations surface as SSN-E030 diagnostics and
/// abort the parse (they are not recoverable-card errors: the point is to
/// stop *before* memory or stack is exhausted).
struct ParseLimits {
  std::size_t max_input_bytes = 8u << 20;  ///< whole-netlist size cap (8 MiB)
  std::size_t max_line_length = 8192;      ///< longest raw line
  std::size_t max_token_length = 512;      ///< longest single token
  int max_subckt_depth = 32;               ///< X-instantiation nesting
  /// Cap on *expanded* elements: a chain of .subckt doublings grows
  /// exponentially, so the budget is enforced during expansion.
  std::size_t max_elements = 200000;
  std::size_t max_errors = 64;  ///< DiagnosticSink cap before giving up
};

struct ParseOptions {
  std::string filename = "netlist";  ///< stamped into diagnostic locations
  ParseLimits limits;
  /// Run circuit::validate_circuit on a clean parse (semantic errors and
  /// warnings are appended to the same sink).
  bool validate = true;
};

/// Everything a parse produced: the (possibly partial) netlist and every
/// diagnostic. `ok` means no errors (warnings allowed); when !ok the
/// netlist must not be simulated.
struct NetlistParseResult {
  ParsedNetlist netlist;
  io::DiagnosticSink diagnostics;
  bool ok = false;
};

/// Error-recovery parse: never throws; collects every diagnostic in one
/// pass. This is the primary entry point (the CLI and the fuzz harness use
/// it directly).
NetlistParseResult parse_netlist_ex(const std::string& text,
                                    const ParseOptions& options = {});

/// Throwing wrapper: parses with the default options and throws
/// io::ParseError (derives std::invalid_argument) carrying *all* collected
/// diagnostics when the input has errors.
ParsedNetlist parse_netlist(const std::string& text);

/// Parse a single SPICE number with optional unit suffix ("10p", "5MEG").
/// Strictly decimal: "inf", "nan" and hex floats ("0x1p3") are rejected,
/// and overflow reports out-of-range instead of leaking std::out_of_range.
/// Throws std::invalid_argument on malformed input.
double parse_spice_number(const std::string& token);

/// Non-throwing variant; on failure `error` says why.
io::NumberParse parse_spice_number_ex(const std::string& token);

}  // namespace ssnkit::circuit
