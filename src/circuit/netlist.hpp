// A SPICE-flavoured netlist front end, so circuits (including the SSN
// testbench) can be described as text. Supported cards:
//
//   * comment lines start with '*' (or ';' / '//' anywhere in a line)
//   Rname n1 n2 value
//   Cname n1 n2 value [IC=v]
//   Lname n1 n2 value [IC=i]
//   Vname p  m  DC value | RAMP(v0 v1 tstart trise) |
//                PULSE(v0 v1 delay rise fall width period) |
//                PWL(t0 v0 t1 v1 ...) | SIN(off ampl freq [delay])
//   Iname p  m  <same shapes as V>
//   Gname op om cp cm gm                      (VCCS)
//   Dname a  c  [IS=value] [N=value]
//   Kname L1 L2 k                 (mutual coupling; fuses the two L cards)
//   Mname d  g  s  b  modelname [W=mult]
//   .model name ASDM  K=... LAMBDA=... VX=...
//   .model name ALPHA VDD=... VT0=... ALPHA=... ID0=... VD0=...
//                     [GAMMA=...] [PHI2F=...] [CLM=...]
//   .model name BSIM  KP=... VT0=... [GAMMA=...] [PHI2F=...] [THETA=...]
//                     [VSAT=...] [CLM=...]
//   (append PMOS to a .model line for a p-channel device)
//   .subckt NAME port1 [port2 ...] / .ends    (hierarchical blocks)
//   Xname node1 [node2 ...] NAME              (instantiate a subcircuit;
//                                              inner elements/nodes become
//                                              "Xname.<local>"; ground is
//                                              global)
//   .tran tstep tstop
//   .end
//
// Numbers accept SPICE suffixes: f p n u m k meg g t (case-insensitive).
#pragma once

#include "circuit/circuit.hpp"

#include <optional>
#include <string>

namespace ssnkit::circuit {

struct TranDirective {
  double tstep = 0.0;
  double tstop = 0.0;
};

struct ParsedNetlist {
  Circuit circuit;
  std::optional<TranDirective> tran;
  std::string title;  ///< first line when it is not a card
};

/// Parse a netlist; throws std::invalid_argument with a line-numbered
/// message on any syntax error.
ParsedNetlist parse_netlist(const std::string& text);

/// Parse a single SPICE number with optional unit suffix ("10p", "5MEG").
/// Throws std::invalid_argument on malformed input.
double parse_spice_number(const std::string& token);

}  // namespace ssnkit::circuit
