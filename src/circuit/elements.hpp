// Circuit elements. Each element knows how to stamp itself into the MNA
// system for DC and transient Newton iterations, and how to advance its own
// history state when a time step is accepted.
#pragma once

#include "circuit/mna.hpp"
#include "devices/mosfet_model.hpp"
#include "waveform/source_spec.hpp"

#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace ssnkit::circuit {

/// Context for accepting a step: the converged solution and the
/// discretization that produced it.
struct AcceptContext {
  const numeric::Vector* x = nullptr;
  IntegrationCoeffs coeffs;
  int node_count = 0;

  double v(NodeId n) const {
    return n == kGround ? 0.0 : (*x)[std::size_t(n - 1)];
  }
  double branch_current(int idx) const {
    return (*x)[std::size_t(node_count - 1 + idx)];
  }
};

class Element {
 public:
  explicit Element(std::string name) : name_(std::move(name)) {}
  virtual ~Element() = default;
  Element(const Element&) = delete;
  Element& operator=(const Element&) = delete;

  const std::string& name() const { return name_; }

  /// Terminal nodes in declaration order (with repeats when terminals
  /// share a node). Used by circuit::validate_circuit for connectivity
  /// checks; pure virtual so a new element type cannot silently vanish
  /// from validation.
  virtual std::vector<NodeId> nodes() const = 0;

  /// Number of branch-current unknowns this element owns (0 or 1).
  virtual int branch_count() const { return 0; }
  /// First branch index, assigned by Circuit::finalize().
  void set_branch_index(int idx) { branch_index_ = idx; }
  int branch_index() const { return branch_index_; }

  /// Total node count of the circuit, set by Circuit::finalize().
  void set_node_count(int n) { node_count_ = n; }

  virtual void stamp(const StampContext& ctx) const = 0;

  /// Small-signal stamp at the DC operating point. Implemented by every
  /// built-in element; the default rejects so new element types fail loudly
  /// rather than silently vanishing from AC results.
  virtual void stamp_ac(const AcStampContext& ctx) const;

  /// Initialize history from the DC solution (or from ICs in UIC mode).
  virtual void init_state(const AcceptContext& ctx) { (void)ctx; }
  /// Advance history after an accepted transient step.
  virtual void accept_step(const AcceptContext& ctx) { (void)ctx; }
  /// Forget derivative history (called when the engine restarts
  /// integration after a source breakpoint).
  virtual void reset_derivative_history() {}

 protected:
  int node_count_ = 0;

 private:
  std::string name_;
  int branch_index_ = -1;
};

// ---------------------------------------------------------------------------

class Resistor final : public Element {
 public:
  Resistor(std::string name, NodeId n1, NodeId n2, double ohms);
  std::vector<NodeId> nodes() const override { return {n1_, n2_}; }
  void stamp(const StampContext& ctx) const override;
  void stamp_ac(const AcStampContext& ctx) const override;
  double resistance() const { return ohms_; }

 private:
  NodeId n1_, n2_;
  double ohms_;
};

/// Capacitor with one-step (BE/trap) or two-step (Gear2) history. An
/// optional initial condition is honoured in UIC mode.
class Capacitor final : public Element {
 public:
  Capacitor(std::string name, NodeId n1, NodeId n2, double farads,
            std::optional<double> ic = std::nullopt);
  std::vector<NodeId> nodes() const override { return {n1_, n2_}; }
  void stamp(const StampContext& ctx) const override;
  void stamp_ac(const AcStampContext& ctx) const override;
  void init_state(const AcceptContext& ctx) override;
  void accept_step(const AcceptContext& ctx) override;
  void reset_derivative_history() override;
  double capacitance() const { return farads_; }
  std::optional<double> initial_condition() const { return ic_; }
  /// Branch voltage/current history (for LTE bookkeeping and tests).
  double v_prev() const { return v_prev_; }
  double i_prev() const { return i_prev_; }

 private:
  NodeId n1_, n2_;
  double farads_;
  std::optional<double> ic_;
  double v_prev_ = 0.0;
  double v_prev2_ = 0.0;
  double i_prev_ = 0.0;     ///< companion current at t_n (trap history)
  bool have_prev2_ = false;
  bool have_idot_ = false;  ///< i_prev_ is valid for trapezoidal reuse
};

/// Inductor: one branch-current unknown; v = L di/dt.
class Inductor final : public Element {
 public:
  Inductor(std::string name, NodeId n1, NodeId n2, double henries,
           std::optional<double> ic = std::nullopt);
  std::vector<NodeId> nodes() const override { return {n1_, n2_}; }
  int branch_count() const override { return 1; }
  void stamp(const StampContext& ctx) const override;
  void stamp_ac(const AcStampContext& ctx) const override;
  void init_state(const AcceptContext& ctx) override;
  void accept_step(const AcceptContext& ctx) override;
  void reset_derivative_history() override;
  double inductance() const { return henries_; }
  std::optional<double> initial_condition() const { return ic_; }
  NodeId node1() const { return n1_; }
  NodeId node2() const { return n2_; }

 private:
  NodeId n1_, n2_;
  double henries_;
  std::optional<double> ic_;
  double i_prev_ = 0.0;
  double i_prev2_ = 0.0;
  double v_prev_ = 0.0;  ///< branch voltage at t_n (trap history)
  bool have_prev2_ = false;
  bool have_vdot_ = false;
};

/// Two magnetically coupled inductors (a transformer / adjacent package
/// pins). Owns both branch currents; the branch equations are
///   v1 = L1*di1/dt + M*di2/dt,   v2 = M*di1/dt + L2*di2/dt,
/// with M = k*sqrt(L1*L2), |k| < 1. At DC both windings are shorts.
class CoupledInductors final : public Element {
 public:
  CoupledInductors(std::string name, NodeId n1a, NodeId n1b, NodeId n2a,
                   NodeId n2b, double l1, double l2, double k);
  /// Winding 1 is nodes()[0..1], winding 2 is nodes()[2..3].
  std::vector<NodeId> nodes() const override {
    return {n1a_, n1b_, n2a_, n2b_};
  }
  int branch_count() const override { return 2; }
  void stamp(const StampContext& ctx) const override;
  void stamp_ac(const AcStampContext& ctx) const override;
  void init_state(const AcceptContext& ctx) override;
  void accept_step(const AcceptContext& ctx) override;
  void reset_derivative_history() override;
  double mutual() const { return m_; }
  double coupling() const { return k_; }

 private:
  NodeId n1a_, n1b_, n2a_, n2b_;
  double l1_, l2_, k_, m_;
  double i1_prev_ = 0.0, i1_prev2_ = 0.0;
  double i2_prev_ = 0.0, i2_prev2_ = 0.0;
  double v1_prev_ = 0.0, v2_prev_ = 0.0;
  bool have_prev2_ = false;
  bool have_vdot_ = false;
};

/// Independent voltage source (one branch-current unknown).
class VoltageSource final : public Element {
 public:
  VoltageSource(std::string name, NodeId p, NodeId m, waveform::SourceSpec spec);
  std::vector<NodeId> nodes() const override { return {p_, m_}; }
  int branch_count() const override { return 1; }
  void stamp(const StampContext& ctx) const override;
  void stamp_ac(const AcStampContext& ctx) const override;
  const waveform::SourceSpec& spec() const { return spec_; }
  NodeId positive() const { return p_; }
  NodeId negative() const { return m_; }

  /// Small-signal excitation for AC analysis (0 = quiet, i.e. a short).
  void set_ac(double magnitude, double phase_deg = 0.0);
  double ac_magnitude() const { return ac_mag_; }

 private:
  NodeId p_, m_;
  waveform::SourceSpec spec_;
  double ac_mag_ = 0.0;
  double ac_phase_deg_ = 0.0;
};

/// Independent current source; positive current flows p -> m externally
/// through the rest of the circuit (SPICE convention: out of m, into p
/// inside the source).
class CurrentSource final : public Element {
 public:
  CurrentSource(std::string name, NodeId p, NodeId m, waveform::SourceSpec spec);
  std::vector<NodeId> nodes() const override { return {p_, m_}; }
  void stamp(const StampContext& ctx) const override;
  void stamp_ac(const AcStampContext& ctx) const override;
  const waveform::SourceSpec& spec() const { return spec_; }

  /// Small-signal excitation for AC analysis (0 = quiet, i.e. open).
  void set_ac(double magnitude, double phase_deg = 0.0);

 private:
  NodeId p_, m_;
  waveform::SourceSpec spec_;
  double ac_mag_ = 0.0;
  double ac_phase_deg_ = 0.0;
};

/// Linear voltage-controlled current source:
/// i(out_p -> out_m) = gm * (v(ctl_p) - v(ctl_m)).
class Vccs final : public Element {
 public:
  Vccs(std::string name, NodeId out_p, NodeId out_m, NodeId ctl_p, NodeId ctl_m,
       double gm);
  std::vector<NodeId> nodes() const override {
    return {out_p_, out_m_, ctl_p_, ctl_m_};
  }
  void stamp(const StampContext& ctx) const override;
  void stamp_ac(const AcStampContext& ctx) const override;

 private:
  NodeId out_p_, out_m_, ctl_p_, ctl_m_;
  double gm_;
};

/// Junction diode i = Is*(exp(v/(n*Vt)) - 1) with exponent limiting.
class Diode final : public Element {
 public:
  Diode(std::string name, NodeId anode, NodeId cathode, double is = 1e-14,
        double n = 1.0);
  std::vector<NodeId> nodes() const override { return {a_, c_}; }
  void stamp(const StampContext& ctx) const override;
  void stamp_ac(const AcStampContext& ctx) const override;
  double saturation_current() const { return is_; }
  double ideality() const { return n_; }

 private:
  /// Current and conductance at junction voltage v (with exp limiting).
  void iv(double v, double& i, double& g) const;

  NodeId a_, c_;
  double is_, n_;
};

enum class MosfetPolarity { kNmos, kPmos };

/// Four-terminal MOSFET; the model is shared (not owned) state-free, so one
/// fitted model instance can serve N identical drivers.
class Mosfet final : public Element {
 public:
  Mosfet(std::string name, NodeId d, NodeId g, NodeId s, NodeId b,
         std::shared_ptr<const devices::MosfetModel> model,
         MosfetPolarity polarity = MosfetPolarity::kNmos);
  std::vector<NodeId> nodes() const override { return {d_, g_, s_, b_}; }
  void stamp(const StampContext& ctx) const override;
  void stamp_ac(const AcStampContext& ctx) const override;

  /// Drain current at the given solved state (post-processing helper).
  double drain_current(const numeric::Vector& x, int node_count) const;

 private:
  /// NMOS-referred current as a function of absolute terminal voltages,
  /// handling polarity and reverse (vds < 0) operation.
  double terminal_current(double vd, double vg, double vs, double vb) const;
  /// Current and the four terminal conductances at a bias point.
  struct SmallSignal {
    double i0 = 0.0, gd = 0.0, gg = 0.0, gs = 0.0, gb = 0.0;
  };
  SmallSignal small_signal(double vd, double vg, double vs, double vb) const;

  NodeId d_, g_, s_, b_;
  std::shared_ptr<const devices::MosfetModel> model_;
  MosfetPolarity polarity_;
};

}  // namespace ssnkit::circuit
