#include "circuit/validate.hpp"

#include "io/table.hpp"

#include <cmath>
#include <map>
#include <numeric>
#include <set>
#include <vector>

namespace ssnkit::circuit {

namespace {

using io::DiagnosticSink;
using support::SrcLoc;

SrcLoc loc_of(const ValidateOptions& opt) { return SrcLoc{opt.source_name, 0, 0}; }

/// Minimal union-find over node ids for the inductor/voltage-source loop
/// check: merging the endpoints of every DC-short branch (V sources,
/// inductors, coupled-inductor windings); an edge whose endpoints are
/// already connected closes a loop of shorts, which makes the DC operating
/// point singular.
class UnionFind {
 public:
  explicit UnionFind(std::size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), std::size_t{0});
  }
  std::size_t find(std::size_t a) {
    while (parent_[a] != a) a = parent_[a] = parent_[parent_[a]];
    return a;
  }
  /// Returns false when a and b were already connected (a loop).
  bool unite(std::size_t a, std::size_t b) {
    a = find(a);
    b = find(b);
    if (a == b) return false;
    parent_[a] = b;
    return true;
  }

 private:
  std::vector<std::size_t> parent_;
};

void check_value(const ValidateOptions& opt, DiagnosticSink& sink,
                 const std::string& name, const char* quantity, double value,
                 double warn_above) {
  if (!std::isfinite(value) || value <= 0.0) {
    sink.error(loc_of(opt), "SSN-E103",
               "element '" + name + "' has non-physical " + quantity + " " +
                   io::si_format(value),
               name);
    return;
  }
  if (opt.unit_sanity && value > warn_above) {
    sink.warning(loc_of(opt), "SSN-W106",
                 "element '" + name + "' has an implausible " + quantity +
                     " of " + io::si_format(value) +
                     " — check the unit suffix",
                 name);
  }
}

}  // namespace

bool validate_circuit(const Circuit& circuit, DiagnosticSink& sink,
                      const ValidateOptions& opt) {
  const std::size_t errors_before = sink.error_count();
  const auto& elements = circuit.elements();

  if (elements.empty()) {
    sink.error(loc_of(opt), "SSN-E105", "circuit has no elements");
    return sink.error_count() == errors_before;
  }

  // Duplicate element names. Circuit::add_* rejects duplicates, so this
  // only fires for exotic construction paths — but validation must not
  // assume its input came through those factories.
  std::set<std::string> names;
  for (const auto& e : elements) {
    if (!names.insert(e->name()).second)
      sink.error(loc_of(opt), "SSN-E101",
                 "duplicate element name '" + e->name() + "'", e->name());
  }

  // Terminal-count connectivity. A non-ground node touched by fewer than
  // two element terminals is either a typo'd net name or a probe point
  // someone forgot to wire up.
  std::map<NodeId, int> touch_count;
  for (const auto& e : elements)
    for (const NodeId n : e->nodes()) ++touch_count[n];
  for (NodeId n = 1; n < circuit.node_count(); ++n) {
    const auto it = touch_count.find(n);
    const int touches = it == touch_count.end() ? 0 : it->second;
    if (touches < 2)
      sink.warning(loc_of(opt), "SSN-W102",
                   "node '" + circuit.node_name(n) + "' is dangling (" +
                       std::to_string(touches) +
                       " connection" + (touches == 1 ? "" : "s") +
                       ") — typo'd net name?",
                   circuit.node_name(n));
  }

  // Per-element value sanity.
  for (const auto& e : elements) {
    if (const auto* r = dynamic_cast<const Resistor*>(e.get())) {
      check_value(opt, sink, r->name(), "resistance", r->resistance(),
                  opt.max_plausible_resistance);
    } else if (const auto* c = dynamic_cast<const Capacitor*>(e.get())) {
      check_value(opt, sink, c->name(), "capacitance", c->capacitance(),
                  opt.max_plausible_capacitance);
    } else if (const auto* l = dynamic_cast<const Inductor*>(e.get())) {
      check_value(opt, sink, l->name(), "inductance", l->inductance(),
                  opt.max_plausible_inductance);
    } else if (const auto* k = dynamic_cast<const CoupledInductors*>(e.get())) {
      if (!std::isfinite(k->coupling()) || std::abs(k->coupling()) >= 1.0)
        sink.error(loc_of(opt), "SSN-E103",
                   "coupled inductors '" + k->name() +
                       "' have non-physical coupling |k| >= 1",
                   k->name());
    } else if (const auto* d = dynamic_cast<const Diode*>(e.get())) {
      if (!std::isfinite(d->saturation_current()) ||
          d->saturation_current() <= 0.0 || !std::isfinite(d->ideality()) ||
          d->ideality() <= 0.0)
        sink.error(loc_of(opt), "SSN-E103",
                   "diode '" + d->name() +
                       "' has non-physical Is or emission coefficient",
                   d->name());
    }
  }

  // Inductor / voltage-source loops: every winding and V source is a DC
  // short; a cycle of shorts leaves the DC system singular (the homotopy's
  // gmin rescue usually digs it out, hence warning rather than error).
  UnionFind uf(std::size_t(circuit.node_count()));
  const auto short_edge = [&](const std::string& name, NodeId a, NodeId b) {
    if (a == b) return;  // self-shorted element is caught by its own row
    if (!uf.unite(std::size_t(a), std::size_t(b)))
      sink.warning(loc_of(opt), "SSN-W104",
                   "element '" + name +
                       "' closes an inductor/voltage-source loop — the DC "
                       "operating point is singular without gmin rescue",
                   name);
  };
  for (const auto& e : elements) {
    if (const auto* l = dynamic_cast<const Inductor*>(e.get())) {
      short_edge(l->name(), l->node1(), l->node2());
    } else if (const auto* v = dynamic_cast<const VoltageSource*>(e.get())) {
      short_edge(v->name(), v->positive(), v->negative());
    } else if (const auto* k = dynamic_cast<const CoupledInductors*>(e.get())) {
      const auto n = k->nodes();
      short_edge(k->name(), n[0], n[1]);
      short_edge(k->name(), n[2], n[3]);
    }
  }

  return sink.error_count() == errors_before;
}

}  // namespace ssnkit::circuit
