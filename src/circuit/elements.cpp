#include "circuit/elements.hpp"

#include "support/contracts.hpp"

#include <cmath>
#include <complex>
#include <numbers>
#include <stdexcept>

// Dimensions for the SSN-L011 units pass (docs/STATIC_ANALYSIS.md): the
// element constructors take their primary value in SI base units.
// ssn-units: ohms=Ohm, ohms_=Ohm, farads=F, farads_=F, henries=H, henries_=H
// ssn-units: omega=Hz

namespace ssnkit::circuit {

void Element::stamp_ac(const AcStampContext& ctx) const {
  (void)ctx;
  throw std::logic_error("stamp_ac: element '" + name() +
                         "' does not support AC analysis");
}

// --- Resistor ---------------------------------------------------------------

Resistor::Resistor(std::string name, NodeId n1, NodeId n2, double ohms)
    : Element(std::move(name)), n1_(n1), n2_(n2), ohms_(ohms) {
  SSN_REQUIRE(ohms_ > 0.0, "Resistor: ohms must be > 0");
}

void Resistor::stamp(const StampContext& ctx) const {
  ctx.stamp_conductance(n1_, n2_, 1.0 / ohms_);
}

void Resistor::stamp_ac(const AcStampContext& ctx) const {
  ctx.stamp_admittance(n1_, n2_, 1.0 / ohms_);
}

// --- Capacitor ---------------------------------------------------------------

Capacitor::Capacitor(std::string name, NodeId n1, NodeId n2, double farads,
                     std::optional<double> ic)
    : Element(std::move(name)), n1_(n1), n2_(n2), farads_(farads), ic_(ic) {
  SSN_REQUIRE(farads_ > 0.0, "Capacitor: farads must be > 0");
}

void Capacitor::stamp(const StampContext& ctx) const {
  if (ctx.mode == AnalysisMode::kDc) return;  // open circuit at DC

  const IntegrationCoeffs& c = ctx.coeffs;
  double geq, ieq;
  if (c.method == Integrator::kTrapezoidal && have_idot_) {
    // i = (2C/h)(v - v_n) - i_n
    geq = 2.0 * farads_ / c.h;
    ieq = -geq * v_prev_ - i_prev_;
  } else if (c.method == Integrator::kGear2 && have_prev2_) {
    geq = farads_ * c.a0;
    ieq = farads_ * (c.a1 * v_prev_ + c.a2 * v_prev2_);
  } else {  // backward Euler (also the restart step of the other methods)
    geq = farads_ / c.h;
    ieq = -geq * v_prev_;
  }
  ctx.stamp_conductance(n1_, n2_, geq);
  ctx.stamp_current(n1_, n2_, ieq);
}

void Capacitor::stamp_ac(const AcStampContext& ctx) const {
  ctx.stamp_admittance(n1_, n2_, numeric::Complex(0.0, ctx.omega * farads_));
}

void Capacitor::init_state(const AcceptContext& ctx) {
  v_prev_ = ic_.value_or(ctx.v(n1_) - ctx.v(n2_));
  v_prev2_ = v_prev_;
  i_prev_ = 0.0;  // steady state: no displacement current
  have_prev2_ = false;
  have_idot_ = true;
}

void Capacitor::accept_step(const AcceptContext& ctx) {
  const IntegrationCoeffs& c = ctx.coeffs;
  const double v_new = ctx.v(n1_) - ctx.v(n2_);
  double i_new;
  if (c.method == Integrator::kTrapezoidal && have_idot_) {
    i_new = (2.0 * farads_ / c.h) * (v_new - v_prev_) - i_prev_;
  } else if (c.method == Integrator::kGear2 && have_prev2_) {
    i_new = farads_ * (c.a0 * v_new + c.a1 * v_prev_ + c.a2 * v_prev2_);
  } else {
    i_new = (farads_ / c.h) * (v_new - v_prev_);
  }
  v_prev2_ = v_prev_;
  v_prev_ = v_new;
  i_prev_ = i_new;
  have_prev2_ = true;
  have_idot_ = true;
}

void Capacitor::reset_derivative_history() {
  have_prev2_ = false;
  have_idot_ = false;
}

// --- Inductor ----------------------------------------------------------------

Inductor::Inductor(std::string name, NodeId n1, NodeId n2, double henries,
                   std::optional<double> ic)
    : Element(std::move(name)), n1_(n1), n2_(n2), henries_(henries), ic_(ic) {
  SSN_REQUIRE(henries_ > 0.0, "Inductor: henries must be > 0");
}

void Inductor::stamp(const StampContext& ctx) const {
  const int br = branch_index();
  ctx.stamp_branch_incidence(node_count_, br, n1_, n2_);
  if (ctx.mode == AnalysisMode::kDc) {
    // Short circuit: v1 - v2 = 0 (incidence already wrote the voltage row).
    return;
  }
  const IntegrationCoeffs& c = ctx.coeffs;
  if (c.method == Integrator::kTrapezoidal && have_vdot_) {
    // v = (2L/h)(i - i_n) - v_n
    const double k = 2.0 * henries_ / c.h;
    ctx.stamp_branch_current_coeff(node_count_, br, -k);
    ctx.stamp_branch_rhs(node_count_, br, -k * i_prev_ - v_prev_);
  } else if (c.method == Integrator::kGear2 && have_prev2_) {
    ctx.stamp_branch_current_coeff(node_count_, br, -henries_ * c.a0);
    ctx.stamp_branch_rhs(node_count_, br,
                         henries_ * (c.a1 * i_prev_ + c.a2 * i_prev2_));
  } else {  // backward Euler
    const double k = henries_ / c.h;
    ctx.stamp_branch_current_coeff(node_count_, br, -k);
    ctx.stamp_branch_rhs(node_count_, br, -k * i_prev_);
  }
}

void Inductor::stamp_ac(const AcStampContext& ctx) const {
  const int br = branch_index();
  ctx.stamp_branch_incidence(node_count_, br, n1_, n2_);
  ctx.stamp_branch_current_coeff(node_count_, br,
                                 numeric::Complex(0.0, -ctx.omega * henries_));
}

void Inductor::init_state(const AcceptContext& ctx) {
  i_prev_ = ic_.value_or(ctx.branch_current(branch_index()));
  i_prev2_ = i_prev_;
  v_prev_ = 0.0;  // steady state: no voltage across the inductor
  have_prev2_ = false;
  have_vdot_ = true;
}

void Inductor::accept_step(const AcceptContext& ctx) {
  const double i_new = ctx.branch_current(branch_index());
  const double v_new = ctx.v(n1_) - ctx.v(n2_);
  i_prev2_ = i_prev_;
  i_prev_ = i_new;
  v_prev_ = v_new;
  have_prev2_ = true;
  have_vdot_ = true;
}

void Inductor::reset_derivative_history() {
  have_prev2_ = false;
  have_vdot_ = false;
}

// --- CoupledInductors ----------------------------------------------------------

CoupledInductors::CoupledInductors(std::string name, NodeId n1a, NodeId n1b,
                                   NodeId n2a, NodeId n2b, double l1, double l2,
                                   double k)
    : Element(std::move(name)),
      n1a_(n1a),
      n1b_(n1b),
      n2a_(n2a),
      n2b_(n2b),
      l1_(l1),
      l2_(l2),
      k_(k),
      m_(k * std::sqrt(l1 * l2)) {
  SSN_REQUIRE(l1_ > 0.0 && l2_ > 0.0,
              "CoupledInductors: inductances must be > 0");
  SSN_REQUIRE(std::fabs(k_) < 1.0, "CoupledInductors: |k| must be < 1");
}

void CoupledInductors::stamp(const StampContext& ctx) const {
  const int br1 = branch_index();
  const int br2 = branch_index() + 1;
  ctx.stamp_branch_incidence(node_count_, br1, n1a_, n1b_);
  ctx.stamp_branch_incidence(node_count_, br2, n2a_, n2b_);
  if (ctx.mode == AnalysisMode::kDc) return;  // both windings short

  const IntegrationCoeffs& c = ctx.coeffs;
  // di/dt ~= g*i_new + hist_i per current; the winding equations then read
  //   v1 - (L1*g)*i1 - (M*g)*i2 = L1*hist1 + M*hist2   (similarly row 2).
  double g, hist1, hist2;
  if (c.method == Integrator::kTrapezoidal && have_vdot_) {
    g = 2.0 / c.h;
    // L1*hist1 + M*hist2 collapses to -(2/h)(L1 i1_n + M i2_n) - v1_n,
    // because v1_n = L1*d1_n + M*d2_n exactly.
    ctx.stamp_branch_current_coeff(node_count_, br1, -l1_ * g);
    ctx.stamp_branch_cross(node_count_, br1, br2, -m_ * g);
    ctx.stamp_branch_rhs(node_count_, br1,
                         -g * (l1_ * i1_prev_ + m_ * i2_prev_) - v1_prev_);
    ctx.stamp_branch_current_coeff(node_count_, br2, -l2_ * g);
    ctx.stamp_branch_cross(node_count_, br2, br1, -m_ * g);
    ctx.stamp_branch_rhs(node_count_, br2,
                         -g * (l2_ * i2_prev_ + m_ * i1_prev_) - v2_prev_);
    return;
  }
  if (c.method == Integrator::kGear2 && have_prev2_) {
    g = c.a0;
    hist1 = c.a1 * i1_prev_ + c.a2 * i1_prev2_;
    hist2 = c.a1 * i2_prev_ + c.a2 * i2_prev2_;
  } else {  // backward Euler
    g = 1.0 / c.h;
    hist1 = -i1_prev_ / c.h;
    hist2 = -i2_prev_ / c.h;
  }
  ctx.stamp_branch_current_coeff(node_count_, br1, -l1_ * g);
  ctx.stamp_branch_cross(node_count_, br1, br2, -m_ * g);
  ctx.stamp_branch_rhs(node_count_, br1, l1_ * hist1 + m_ * hist2);
  ctx.stamp_branch_current_coeff(node_count_, br2, -l2_ * g);
  ctx.stamp_branch_cross(node_count_, br2, br1, -m_ * g);
  ctx.stamp_branch_rhs(node_count_, br2, l2_ * hist2 + m_ * hist1);
}

void CoupledInductors::stamp_ac(const AcStampContext& ctx) const {
  const int br1 = branch_index();
  const int br2 = branch_index() + 1;
  ctx.stamp_branch_incidence(node_count_, br1, n1a_, n1b_);
  ctx.stamp_branch_incidence(node_count_, br2, n2a_, n2b_);
  const numeric::Complex jw(0.0, ctx.omega);
  ctx.stamp_branch_current_coeff(node_count_, br1, -jw * l1_);
  ctx.stamp_branch_cross(node_count_, br1, br2, -jw * m_);
  ctx.stamp_branch_current_coeff(node_count_, br2, -jw * l2_);
  ctx.stamp_branch_cross(node_count_, br2, br1, -jw * m_);
}

void CoupledInductors::init_state(const AcceptContext& ctx) {
  i1_prev_ = ctx.branch_current(branch_index());
  i2_prev_ = ctx.branch_current(branch_index() + 1);
  i1_prev2_ = i1_prev_;
  i2_prev2_ = i2_prev_;
  v1_prev_ = 0.0;
  v2_prev_ = 0.0;
  have_prev2_ = false;
  have_vdot_ = true;
}

void CoupledInductors::accept_step(const AcceptContext& ctx) {
  i1_prev2_ = i1_prev_;
  i2_prev2_ = i2_prev_;
  i1_prev_ = ctx.branch_current(branch_index());
  i2_prev_ = ctx.branch_current(branch_index() + 1);
  v1_prev_ = ctx.v(n1a_) - ctx.v(n1b_);
  v2_prev_ = ctx.v(n2a_) - ctx.v(n2b_);
  have_prev2_ = true;
  have_vdot_ = true;
}

void CoupledInductors::reset_derivative_history() {
  have_prev2_ = false;
  have_vdot_ = false;
}

// --- VoltageSource -----------------------------------------------------------

VoltageSource::VoltageSource(std::string name, NodeId p, NodeId m,
                             waveform::SourceSpec spec)
    : Element(std::move(name)), p_(p), m_(m), spec_(std::move(spec)) {
  waveform::validate(spec_);
}

void VoltageSource::set_ac(double magnitude, double phase_deg) {
  SSN_REQUIRE(magnitude >= 0.0,
              "VoltageSource::set_ac: magnitude must be >= 0");
  ac_mag_ = magnitude;
  ac_phase_deg_ = phase_deg;
}

void VoltageSource::stamp_ac(const AcStampContext& ctx) const {
  const int br = branch_index();
  ctx.stamp_branch_incidence(node_count_, br, p_, m_);
  const double phase = ac_phase_deg_ * std::numbers::pi / 180.0;
  ctx.stamp_branch_rhs(node_count_, br,
                       std::polar(ac_mag_, phase));
}

void VoltageSource::stamp(const StampContext& ctx) const {
  const int br = branch_index();
  ctx.stamp_branch_incidence(node_count_, br, p_, m_);
  ctx.stamp_branch_rhs(node_count_, br,
                       ctx.source_scale * waveform::source_value(spec_, ctx.time));
}

// --- CurrentSource -----------------------------------------------------------

CurrentSource::CurrentSource(std::string name, NodeId p, NodeId m,
                             waveform::SourceSpec spec)
    : Element(std::move(name)), p_(p), m_(m), spec_(std::move(spec)) {
  waveform::validate(spec_);
}

void CurrentSource::set_ac(double magnitude, double phase_deg) {
  SSN_REQUIRE(magnitude >= 0.0,
              "CurrentSource::set_ac: magnitude must be >= 0");
  ac_mag_ = magnitude;
  ac_phase_deg_ = phase_deg;
}

void CurrentSource::stamp_ac(const AcStampContext& ctx) const {
  const double phase = ac_phase_deg_ * std::numbers::pi / 180.0;
  ctx.stamp_current(p_, m_, std::polar(ac_mag_, phase));
}

void CurrentSource::stamp(const StampContext& ctx) const {
  ctx.stamp_current(p_, m_,
                    ctx.source_scale * waveform::source_value(spec_, ctx.time));
}

// --- Vccs --------------------------------------------------------------------

Vccs::Vccs(std::string name, NodeId out_p, NodeId out_m, NodeId ctl_p,
           NodeId ctl_m, double gm)
    : Element(std::move(name)),
      out_p_(out_p),
      out_m_(out_m),
      ctl_p_(ctl_p),
      ctl_m_(ctl_m),
      gm_(gm) {}

void Vccs::stamp(const StampContext& ctx) const {
  ctx.stamp_vccs(out_p_, out_m_, ctl_p_, ctl_m_, gm_);
}

void Vccs::stamp_ac(const AcStampContext& ctx) const {
  ctx.stamp_vccs(out_p_, out_m_, ctl_p_, ctl_m_, gm_);
}

// --- Diode -------------------------------------------------------------------

Diode::Diode(std::string name, NodeId anode, NodeId cathode, double is, double n)
    : Element(std::move(name)), a_(anode), c_(cathode), is_(is), n_(n) {
  SSN_REQUIRE(is_ > 0.0, "Diode: is must be > 0");
  SSN_REQUIRE(n_ > 0.0, "Diode: n must be > 0");
}

void Diode::iv(double v, double& i, double& g) const {
  constexpr double kVt = 0.025852;  // thermal voltage at 300 K
  constexpr double kExpLimit = 40.0;
  const double nvt = n_ * kVt;
  const double xarg = v / nvt;
  if (xarg > kExpLimit) {
    // Linear extension beyond the limiting voltage (C1 continuous).
    const double e = std::exp(kExpLimit);
    i = is_ * (e * (1.0 + (xarg - kExpLimit)) - 1.0);
    g = is_ * e / nvt;
  } else {
    const double e = std::exp(xarg);
    i = is_ * (e - 1.0);
    g = is_ * e / nvt;
  }
  g += 1e-12;  // floor keeps the reverse-biased Jacobian nonsingular
}

void Diode::stamp(const StampContext& ctx) const {
  const double v = ctx.v(a_) - ctx.v(c_);
  double i, g;
  iv(v, i, g);
  const double ieq = i - g * v;
  ctx.stamp_conductance(a_, c_, g);
  ctx.stamp_current(a_, c_, ieq);
}

void Diode::stamp_ac(const AcStampContext& ctx) const {
  const double v = ctx.v_op(a_) - ctx.v_op(c_);
  double i, g;
  iv(v, i, g);
  ctx.stamp_admittance(a_, c_, g);
}

// --- Mosfet ------------------------------------------------------------------

Mosfet::Mosfet(std::string name, NodeId d, NodeId g, NodeId s, NodeId b,
               std::shared_ptr<const devices::MosfetModel> model,
               MosfetPolarity polarity)
    : Element(std::move(name)),
      d_(d),
      g_(g),
      s_(s),
      b_(b),
      model_(std::move(model)),
      polarity_(polarity) {
  SSN_REQUIRE(model_ != nullptr, "Mosfet: model must not be null");
}

double Mosfet::terminal_current(double vd, double vg, double vs, double vb) const {
  if (polarity_ == MosfetPolarity::kNmos) {
    if (vd >= vs) return model_->ids(vg - vs, vd - vs, vb - vs);
    // Reverse operation: drain and source swap roles.
    return -model_->ids(vg - vd, vs - vd, vb - vd);
  }
  // PMOS: mirror every voltage and reuse the NMOS surface.
  if (vs >= vd) return -model_->ids(vs - vg, vs - vd, vs - vb);
  return model_->ids(vd - vg, vd - vs, vd - vb);
}

Mosfet::SmallSignal Mosfet::small_signal(double vd, double vg, double vs,
                                         double vb) const {
  // Numerical 4-terminal Jacobian. Accuracy only affects Newton's path in
  // transient mode (the residual uses the exact i0) and is plenty for the
  // linearized AC stamps.
  const double h = 1e-6;
  SmallSignal ss;
  ss.i0 = terminal_current(vd, vg, vs, vb);
  ss.gd = (terminal_current(vd + h, vg, vs, vb) -
           terminal_current(vd - h, vg, vs, vb)) /
          (2.0 * h);
  ss.gg = (terminal_current(vd, vg + h, vs, vb) -
           terminal_current(vd, vg - h, vs, vb)) /
          (2.0 * h);
  ss.gs = (terminal_current(vd, vg, vs + h, vb) -
           terminal_current(vd, vg, vs - h, vb)) /
          (2.0 * h);
  ss.gb = (terminal_current(vd, vg, vs, vb + h) -
           terminal_current(vd, vg, vs, vb - h)) /
          (2.0 * h);
  return ss;
}

void Mosfet::stamp(const StampContext& ctx) const {
  const double vd = ctx.v(d_);
  const double vg = ctx.v(g_);
  const double vs = ctx.v(s_);
  const double vb = ctx.v(b_);
  const SmallSignal ss = small_signal(vd, vg, vs, vb);

  // Current i0 flows drain -> source through the channel.
  ctx.stamp_jacobian(d_, d_, ss.gd);
  ctx.stamp_jacobian(d_, g_, ss.gg);
  ctx.stamp_jacobian(d_, s_, ss.gs);
  ctx.stamp_jacobian(d_, b_, ss.gb);
  ctx.stamp_jacobian(s_, d_, -ss.gd);
  ctx.stamp_jacobian(s_, g_, -ss.gg);
  ctx.stamp_jacobian(s_, s_, -ss.gs);
  ctx.stamp_jacobian(s_, b_, -ss.gb);
  const double ieq = ss.i0 - ss.gd * vd - ss.gg * vg - ss.gs * vs - ss.gb * vb;
  ctx.stamp_current(d_, s_, ieq);
}

void Mosfet::stamp_ac(const AcStampContext& ctx) const {
  const SmallSignal ss =
      small_signal(ctx.v_op(d_), ctx.v_op(g_), ctx.v_op(s_), ctx.v_op(b_));
  ctx.stamp_jacobian(d_, d_, ss.gd);
  ctx.stamp_jacobian(d_, g_, ss.gg);
  ctx.stamp_jacobian(d_, s_, ss.gs);
  ctx.stamp_jacobian(d_, b_, ss.gb);
  ctx.stamp_jacobian(s_, d_, -ss.gd);
  ctx.stamp_jacobian(s_, g_, -ss.gg);
  ctx.stamp_jacobian(s_, s_, -ss.gs);
  ctx.stamp_jacobian(s_, b_, -ss.gb);
}

double Mosfet::drain_current(const numeric::Vector& x, int node_count) const {
  (void)node_count;
  const auto volt = [&](NodeId n) {
    return n == kGround ? 0.0 : x[std::size_t(n - 1)];
  };
  return terminal_current(volt(d_), volt(g_), volt(s_), volt(b_));
}

}  // namespace ssnkit::circuit
