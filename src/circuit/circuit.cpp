#include "circuit/circuit.hpp"

#include <stdexcept>

namespace ssnkit::circuit {

Circuit::Circuit() {
  node_ids_["0"] = kGround;
  node_names_.push_back("0");
}

NodeId Circuit::node(const std::string& name) {
  const std::string key = (name == "gnd" || name == "GND") ? "0" : name;
  const auto it = node_ids_.find(key);
  if (it != node_ids_.end()) return it->second;
  const NodeId id = NodeId(node_names_.size());
  node_ids_[key] = id;
  node_names_.push_back(key);
  finalized_ = false;
  return id;
}

NodeId Circuit::find_node(const std::string& name) const {
  const std::string key = (name == "gnd" || name == "GND") ? "0" : name;
  const auto it = node_ids_.find(key);
  if (it == node_ids_.end())
    throw std::out_of_range("Circuit::find_node: unknown node '" + name + "'");
  return it->second;
}

bool Circuit::has_node(const std::string& name) const {
  const std::string key = (name == "gnd" || name == "GND") ? "0" : name;
  return node_ids_.count(key) != 0;
}

const std::string& Circuit::node_name(NodeId id) const {
  if (id < 0 || id >= node_count())
    throw std::out_of_range("Circuit::node_name: bad node id");
  return node_names_[std::size_t(id)];
}

template <typename T, typename... Args>
T& Circuit::emplace(Args&&... args) {
  auto el = std::make_unique<T>(std::forward<Args>(args)...);
  if (find_element(el->name()) != nullptr)
    throw std::invalid_argument("Circuit: duplicate element name '" + el->name() +
                                "'");
  T& ref = *el;
  elements_.push_back(std::move(el));
  finalized_ = false;
  return ref;
}

Resistor& Circuit::add_resistor(const std::string& name, NodeId n1, NodeId n2,
                                double ohms) {
  return emplace<Resistor>(name, n1, n2, ohms);
}

Capacitor& Circuit::add_capacitor(const std::string& name, NodeId n1, NodeId n2,
                                  double farads, std::optional<double> ic) {
  return emplace<Capacitor>(name, n1, n2, farads, ic);
}

Inductor& Circuit::add_inductor(const std::string& name, NodeId n1, NodeId n2,
                                double henries, std::optional<double> ic) {
  return emplace<Inductor>(name, n1, n2, henries, ic);
}

CoupledInductors& Circuit::add_coupled_inductors(const std::string& name,
                                                 NodeId n1a, NodeId n1b,
                                                 NodeId n2a, NodeId n2b,
                                                 double l1, double l2, double k) {
  return emplace<CoupledInductors>(name, n1a, n1b, n2a, n2b, l1, l2, k);
}

VoltageSource& Circuit::add_vsource(const std::string& name, NodeId p, NodeId m,
                                    waveform::SourceSpec spec) {
  return emplace<VoltageSource>(name, p, m, std::move(spec));
}

CurrentSource& Circuit::add_isource(const std::string& name, NodeId p, NodeId m,
                                    waveform::SourceSpec spec) {
  return emplace<CurrentSource>(name, p, m, std::move(spec));
}

Vccs& Circuit::add_vccs(const std::string& name, NodeId out_p, NodeId out_m,
                        NodeId ctl_p, NodeId ctl_m, double gm) {
  return emplace<Vccs>(name, out_p, out_m, ctl_p, ctl_m, gm);
}

Diode& Circuit::add_diode(const std::string& name, NodeId anode, NodeId cathode,
                          double is, double n) {
  return emplace<Diode>(name, anode, cathode, is, n);
}

Mosfet& Circuit::add_mosfet(const std::string& name, NodeId d, NodeId g,
                            NodeId s, NodeId b,
                            std::shared_ptr<const devices::MosfetModel> model,
                            MosfetPolarity polarity) {
  return emplace<Mosfet>(name, d, g, s, b, std::move(model), polarity);
}

Element* Circuit::find_element(const std::string& name) const {
  for (const auto& el : elements_)
    if (el->name() == name) return el.get();
  return nullptr;
}

void Circuit::remove_element(const std::string& name) {
  for (auto it = elements_.begin(); it != elements_.end(); ++it) {
    if ((*it)->name() == name) {
      elements_.erase(it);
      finalized_ = false;
      return;
    }
  }
  throw std::invalid_argument("Circuit::remove_element: no element '" + name + "'");
}

int Circuit::finalize() {
  if (!finalized_) {
    branch_total_ = 0;
    for (auto& el : elements_) {
      el->set_node_count(node_count());
      if (el->branch_count() > 0) {
        el->set_branch_index(branch_total_);
        branch_total_ += el->branch_count();
      }
    }
    finalized_ = true;
  }
  return unknown_count();
}

int Circuit::voltage_index(NodeId n) const {
  if (n <= kGround || n >= node_count())
    throw std::invalid_argument("Circuit::voltage_index: not a non-ground node");
  return n - 1;
}

int Circuit::branch_unknown_index(const Element& e) const {
  if (e.branch_count() == 0)
    throw std::invalid_argument("Circuit::branch_unknown_index: element '" +
                                e.name() + "' has no branch");
  return node_count() - 1 + e.branch_index();
}

}  // namespace ssnkit::circuit
