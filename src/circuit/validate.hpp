// Semantic circuit validation: the checks a syntactically valid netlist can
// still fail. Runs after parsing (parse_netlist_ex calls it on a clean
// parse) and is equally usable on programmatically built circuits before
// handing them to the solvers. All findings flow into an
// io::DiagnosticSink with typed severities:
//
//   errors (the MNA system is wrong or the physics is nonsense):
//     SSN-E101  duplicate element name
//     SSN-E103  non-physical element value (R/L/C <= 0, |k| >= 1,
//               diode Is/n <= 0, non-finite anything)
//     SSN-E105  empty circuit (no elements)
//
//   warnings (legal but almost certainly a mistake):
//     SSN-W102  dangling node (a non-ground node touched by fewer than two
//               element terminals — usually a typo'd node name)
//     SSN-W104  inductor / voltage-source loop (DC operating point is
//               singular without gmin rescue)
//     SSN-W106  unit-sanity heuristic (a 1 F "bond-wire" capacitor, a 1 H
//               package inductor, a teraohm resistor: suffix mistakes)
//
// Validation never throws and never mutates the circuit.
#pragma once

#include "circuit/circuit.hpp"
#include "io/diagnostics.hpp"

namespace ssnkit::circuit {

struct ValidateOptions {
  /// File name stamped into diagnostic locations ("netlist", a path, ...).
  std::string source_name = "<circuit>";
  /// Enable the SSN-W106 magnitude heuristics.
  bool unit_sanity = true;
  /// SSN-W106 thresholds: values above these are suspicious for an
  /// on-package parasitic netlist (the paper's domain: pF / nH / ohms).
  double max_plausible_capacitance = 1e-3;   ///< farads
  double max_plausible_inductance = 1.0;     ///< henries
  double max_plausible_resistance = 1e12;    ///< ohms
};

/// Run every semantic check, appending findings to `sink`. Returns true
/// when no *errors* were found (warnings do not fail validation).
bool validate_circuit(const Circuit& circuit, io::DiagnosticSink& sink,
                      const ValidateOptions& options = {});

}  // namespace ssnkit::circuit
