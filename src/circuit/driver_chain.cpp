#include "circuit/driver_chain.hpp"

#include "support/contracts.hpp"

#include <cmath>
#include <stdexcept>

namespace ssnkit::circuit {

void TaperedDriverSpec::validate() const {
  tech.validate();
  package.validate();
  SSN_REQUIRE(n_drivers >= 1, "TaperedDriverSpec: n_drivers must be >= 1");
  SSN_REQUIRE(stages >= 1, "TaperedDriverSpec: stages must be >= 1");
  SSN_REQUIRE(taper > 1.0, "TaperedDriverSpec: taper must be > 1");
  SSN_REQUIRE(final_width > 0.0, "TaperedDriverSpec: final_width must be > 0");
  SSN_REQUIRE(input_rise_time > 0.0,
              "TaperedDriverSpec: input_rise_time must be > 0");
  SSN_REQUIRE(load_cap >= 0.0, "TaperedDriverSpec: load_cap must be >= 0");
}

TaperedDriverBench make_tapered_driver_bench(const TaperedDriverSpec& spec) {
  spec.validate();
  TaperedDriverBench bench;
  Circuit& ckt = bench.circuit;

  const double vdd = spec.tech.vdd;
  const double cl = spec.load_cap > 0.0 ? spec.load_cap : spec.tech.load_cap;

  const NodeId gnd = kGround;
  const NodeId n_vdd = ckt.node("vdd");
  const NodeId n_vssi = ckt.node(bench.vssi_node);
  ckt.add_vsource("Vdd", n_vdd, gnd, waveform::Dc{vdd});
  ckt.add_inductor(bench.inductor_name, n_vssi, gnd, spec.package.inductance);
  if (spec.include_package_c && spec.package.capacitance > 0.0)
    ckt.add_capacitor("Cpad", n_vssi, gnd, spec.package.capacitance);

  // Stage widths: final_width, final_width/a, final_width/a^2, ...
  std::vector<double> widths(std::size_t(spec.stages));
  for (int s = 0; s < spec.stages; ++s)
    widths[std::size_t(s)] =
        spec.final_width / std::pow(spec.taper, double(spec.stages - 1 - s));

  // The final stage's gate must RISE: with (stages-1) inversions before it,
  // the chain input rises when stages is odd and falls when stages is even.
  const bool input_rises = (spec.stages % 2) == 1;
  const waveform::Ramp input_ramp{input_rises ? 0.0 : vdd,
                                  input_rises ? vdd : 0.0, 0.0,
                                  spec.input_rise_time};
  bench.t_ramp_end = spec.input_rise_time;

  for (int d = 0; d < spec.n_drivers; ++d) {
    const std::string dn = std::to_string(d);
    const NodeId n_in = ckt.node("in" + dn);
    bench.input_nodes.push_back("in" + dn);
    ckt.add_vsource("Vin" + dn, n_in, gnd, input_ramp);

    NodeId prev = n_in;
    for (int s = 0; s < spec.stages; ++s) {
      const std::string sn = dn + "_" + std::to_string(s);
      const bool is_final = s == spec.stages - 1;
      const NodeId out =
          ckt.node(is_final ? "out" + dn : "n" + sn);
      const double w = widths[std::size_t(s)];

      std::shared_ptr<const devices::MosfetModel> nmos(
          spec.tech.make_golden(spec.golden, w));
      std::shared_ptr<const devices::MosfetModel> pmos(
          spec.tech.make_golden(spec.golden, 0.8 * w));

      // Final stage (and optionally the pre-drivers) return through the
      // noisy I/O ground; otherwise the quiet core ground.
      const NodeId stage_gnd =
          (is_final || spec.predrivers_on_noisy_ground) ? n_vssi : gnd;
      ckt.add_mosfet("Mn" + sn, out, prev, stage_gnd, gnd, nmos);
      ckt.add_mosfet("Mp" + sn, out, prev, n_vdd, n_vdd, pmos,
                     MosfetPolarity::kPmos);

      if (is_final) {
        ckt.add_capacitor("Cl" + dn, out, gnd, cl);
        bench.output_nodes.push_back("out" + dn);
        if (d == 0)
          bench.final_gate_node = ckt.node_name(prev);
      } else {
        // The next stage's gate load.
        const double c_gate =
            spec.tech.gate_cap * widths[std::size_t(s + 1)] * 1.8;  // n+p gates
        ckt.add_capacitor("Cg" + sn, out, gnd, c_gate);
      }
      // DC anchor for robustness (matches the flat SSN bench convention).
      ckt.add_resistor("Ra" + sn, out, n_vdd, 1e7);
      prev = out;
    }
  }
  return bench;
}

}  // namespace ssnkit::circuit
