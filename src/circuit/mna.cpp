#include "circuit/mna.hpp"

namespace ssnkit::circuit {

void StampContext::add_a(std::size_t r, std::size_t c, double v) const {
  if (sa)
    sa->add(r, c, v);
  else
    (*a)(r, c) += v;
}

void StampContext::stamp_conductance(NodeId n1, NodeId n2, double g) const {
  if (n1 != kGround) {
    add_a(std::size_t(n1 - 1), std::size_t(n1 - 1), g);
    if (n2 != kGround) add_a(std::size_t(n1 - 1), std::size_t(n2 - 1), -g);
  }
  if (n2 != kGround) {
    add_a(std::size_t(n2 - 1), std::size_t(n2 - 1), g);
    if (n1 != kGround) add_a(std::size_t(n2 - 1), std::size_t(n1 - 1), -g);
  }
}

void StampContext::stamp_current(NodeId from, NodeId to, double i) const {
  if (from != kGround) (*b)[std::size_t(from - 1)] -= i;
  if (to != kGround) (*b)[std::size_t(to - 1)] += i;
}

void StampContext::stamp_vccs(NodeId out_p, NodeId out_m, NodeId cp, NodeId cm,
                              double g) const {
  stamp_jacobian(out_p, cp, +g);
  stamp_jacobian(out_p, cm, -g);
  stamp_jacobian(out_m, cp, -g);
  stamp_jacobian(out_m, cm, +g);
}

void StampContext::stamp_jacobian(NodeId row_node, NodeId col_node,
                                  double g) const {
  if (row_node == kGround || col_node == kGround) return;
  add_a(std::size_t(row_node - 1), std::size_t(col_node - 1), g);
}

void StampContext::stamp_rhs(NodeId node, double value) const {
  if (node == kGround) return;
  (*b)[std::size_t(node - 1)] += value;
}

void StampContext::stamp_branch_incidence(int node_count, int branch, NodeId p,
                                          NodeId m) const {
  const std::size_t row = std::size_t(branch_row(node_count, branch));
  // KCL: branch current leaves p, enters m.
  if (p != kGround) add_a(std::size_t(p - 1), row, 1.0);
  if (m != kGround) add_a(std::size_t(m - 1), row, -1.0);
  // Branch equation voltage terms v(p) - v(m).
  if (p != kGround) add_a(row, std::size_t(p - 1), 1.0);
  if (m != kGround) add_a(row, std::size_t(m - 1), -1.0);
}

void StampContext::stamp_branch_voltage(int node_count, int branch,
                                        NodeId col_node, double coeff) const {
  if (col_node == kGround) return;
  add_a(std::size_t(branch_row(node_count, branch)), std::size_t(col_node - 1),
        coeff);
}

void StampContext::stamp_branch_current_coeff(int node_count, int branch,
                                              double coeff) const {
  const std::size_t row = std::size_t(branch_row(node_count, branch));
  add_a(row, row, coeff);
}

void StampContext::stamp_branch_cross(int node_count, int row_branch,
                                      int col_branch, double coeff) const {
  add_a(std::size_t(branch_row(node_count, row_branch)),
        std::size_t(branch_row(node_count, col_branch)), coeff);
}

void StampContext::stamp_branch_rhs(int node_count, int branch,
                                    double value) const {
  (*b)[std::size_t(branch_row(node_count, branch))] += value;
}

// --- AcStampContext ----------------------------------------------------------

void AcStampContext::stamp_admittance(NodeId n1, NodeId n2,
                                      numeric::Complex y) const {
  if (n1 != kGround) {
    (*a)(std::size_t(n1 - 1), std::size_t(n1 - 1)) += y;
    if (n2 != kGround) (*a)(std::size_t(n1 - 1), std::size_t(n2 - 1)) -= y;
  }
  if (n2 != kGround) {
    (*a)(std::size_t(n2 - 1), std::size_t(n2 - 1)) += y;
    if (n1 != kGround) (*a)(std::size_t(n2 - 1), std::size_t(n1 - 1)) -= y;
  }
}

void AcStampContext::stamp_jacobian(NodeId row_node, NodeId col_node,
                                    numeric::Complex y) const {
  if (row_node == kGround || col_node == kGround) return;
  (*a)(std::size_t(row_node - 1), std::size_t(col_node - 1)) += y;
}

void AcStampContext::stamp_current(NodeId from, NodeId to,
                                   numeric::Complex i) const {
  if (from != kGround) (*b)[std::size_t(from - 1)] -= i;
  if (to != kGround) (*b)[std::size_t(to - 1)] += i;
}

void AcStampContext::stamp_vccs(NodeId out_p, NodeId out_m, NodeId cp, NodeId cm,
                                double g) const {
  stamp_jacobian(out_p, cp, +g);
  stamp_jacobian(out_p, cm, -g);
  stamp_jacobian(out_m, cp, -g);
  stamp_jacobian(out_m, cm, +g);
}

void AcStampContext::stamp_branch_incidence(int node_count, int branch, NodeId p,
                                            NodeId m) const {
  const std::size_t row = std::size_t(branch_row(node_count, branch));
  if (p != kGround) (*a)(std::size_t(p - 1), row) += 1.0;
  if (m != kGround) (*a)(std::size_t(m - 1), row) -= 1.0;
  if (p != kGround) (*a)(row, std::size_t(p - 1)) += 1.0;
  if (m != kGround) (*a)(row, std::size_t(m - 1)) -= 1.0;
}

void AcStampContext::stamp_branch_current_coeff(int node_count, int branch,
                                                numeric::Complex coeff) const {
  const std::size_t row = std::size_t(branch_row(node_count, branch));
  (*a)(row, row) += coeff;
}

void AcStampContext::stamp_branch_cross(int node_count, int row_branch,
                                        int col_branch,
                                        numeric::Complex coeff) const {
  (*a)(std::size_t(branch_row(node_count, row_branch)),
       std::size_t(branch_row(node_count, col_branch))) += coeff;
}

void AcStampContext::stamp_branch_rhs(int node_count, int branch,
                                      numeric::Complex value) const {
  (*b)[std::size_t(branch_row(node_count, branch))] += value;
}

}  // namespace ssnkit::circuit
