#include "circuit/netlist.hpp"

#include "devices/alpha_power.hpp"
#include "devices/asdm.hpp"
#include "devices/bsim_lite.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <functional>
#include <map>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace ssnkit::circuit {

namespace {

std::string to_upper(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return char(std::toupper(c)); });
  return s;
}

[[noreturn]] void fail(int line_no, const std::string& msg) {
  throw std::invalid_argument("netlist line " + std::to_string(line_no) + ": " + msg);
}

/// Strip comments, expand '(' / ')' / ',' / '=' into token separators and
/// split on whitespace.
std::vector<std::string> tokenize(const std::string& raw) {
  std::string line = raw;
  for (const char* marker : {";", "//"}) {
    const auto pos = line.find(marker);
    if (pos != std::string::npos) line.erase(pos);
  }
  std::string spaced;
  spaced.reserve(line.size());
  for (char c : line) {
    if (c == '(' || c == ')' || c == ',' || c == '=') {
      spaced.push_back(' ');
      if (c == '=') spaced.push_back('=');  // keep '=' as its own token
      spaced.push_back(' ');
    } else {
      spaced.push_back(c);
    }
  }
  std::istringstream iss(spaced);
  std::vector<std::string> tokens;
  std::string tok;
  while (iss >> tok) tokens.push_back(tok);
  return tokens;
}

struct ModelCard {
  enum class Kind { kAsdm, kAlpha, kBsim } kind = Kind::kAsdm;
  MosfetPolarity polarity = MosfetPolarity::kNmos;
  std::map<std::string, double> params;
};

/// key=value pairs starting at tokens[start] (tokens look like
/// "KEY" "=" "value" after tokenize()).
std::map<std::string, double> parse_kv(const std::vector<std::string>& tokens,
                                       std::size_t start, int line_no) {
  std::map<std::string, double> kv;
  std::size_t i = start;
  while (i < tokens.size()) {
    if (i + 2 >= tokens.size() || tokens[i + 1] != "=")
      fail(line_no, "expected KEY=VALUE, got '" + tokens[i] + "'");
    kv[to_upper(tokens[i])] = parse_spice_number(tokens[i + 2]);
    i += 3;
  }
  return kv;
}

waveform::SourceSpec parse_source_spec(const std::vector<std::string>& tokens,
                                       std::size_t start, int line_no) {
  if (start >= tokens.size()) fail(line_no, "missing source specification");
  const std::string kind = to_upper(tokens[start]);
  const auto num = [&](std::size_t i) -> double {
    if (start + i >= tokens.size()) fail(line_no, "missing source argument");
    return parse_spice_number(tokens[start + i]);
  };
  const std::size_t argc = tokens.size() - start - 1;
  if (kind == "DC") {
    if (argc < 1) fail(line_no, "DC needs a value");
    return waveform::Dc{num(1)};
  }
  if (kind == "RAMP") {
    if (argc < 4) fail(line_no, "RAMP needs (v0 v1 tstart trise)");
    return waveform::Ramp{num(1), num(2), num(3), num(4)};
  }
  if (kind == "PULSE") {
    if (argc < 7) fail(line_no, "PULSE needs (v0 v1 delay rise fall width period)");
    return waveform::Pulse{num(1), num(2), num(3), num(4), num(5), num(6), num(7)};
  }
  if (kind == "PWL") {
    if (argc < 2 || argc % 2 != 0) fail(line_no, "PWL needs t/v pairs");
    waveform::Pwl pwl;
    for (std::size_t i = 1; i + 1 <= argc; i += 2)
      pwl.points.emplace_back(num(i), num(i + 1));
    return pwl;
  }
  if (kind == "SIN") {
    if (argc < 3) fail(line_no, "SIN needs (offset amplitude freq [delay])");
    waveform::Sine s{num(1), num(2), num(3), 0.0};
    if (argc >= 4) s.delay = num(4);
    return s;
  }
  // Bare number: treat as DC.
  try {
    return waveform::Dc{parse_spice_number(tokens[start])};
  } catch (const std::invalid_argument&) {
    fail(line_no, "unknown source kind '" + kind + "'");
  }
}

double kv_get(const std::map<std::string, double>& kv, const std::string& key,
              std::optional<double> fallback, int line_no) {
  const auto it = kv.find(key);
  if (it != kv.end()) return it->second;
  if (fallback) return *fallback;
  fail(line_no, "missing required model parameter " + key);
}

std::shared_ptr<const devices::MosfetModel> build_model(const ModelCard& card,
                                                        int line_no) {
  switch (card.kind) {
    case ModelCard::Kind::kAsdm: {
      devices::AsdmParams p;
      p.k = kv_get(card.params, "K", std::nullopt, line_no);
      p.lambda = kv_get(card.params, "LAMBDA", 1.0, line_no);
      p.vx = kv_get(card.params, "VX", std::nullopt, line_no);
      return std::make_shared<devices::AsdmModel>(p);
    }
    case ModelCard::Kind::kAlpha: {
      devices::AlphaPowerParams p;
      p.vdd = kv_get(card.params, "VDD", std::nullopt, line_no);
      p.vt0 = kv_get(card.params, "VT0", std::nullopt, line_no);
      p.alpha = kv_get(card.params, "ALPHA", std::nullopt, line_no);
      p.id0 = kv_get(card.params, "ID0", std::nullopt, line_no);
      p.vd0 = kv_get(card.params, "VD0", std::nullopt, line_no);
      p.gamma = kv_get(card.params, "GAMMA", 0.0, line_no);
      p.phi2f = kv_get(card.params, "PHI2F", 0.85, line_no);
      p.lambda_clm = kv_get(card.params, "CLM", 0.0, line_no);
      return std::make_shared<devices::AlphaPowerModel>(p);
    }
    case ModelCard::Kind::kBsim: {
      devices::BsimLiteParams p;
      p.kp = kv_get(card.params, "KP", std::nullopt, line_no);
      p.vt0 = kv_get(card.params, "VT0", std::nullopt, line_no);
      p.gamma = kv_get(card.params, "GAMMA", 0.0, line_no);
      p.phi2f = kv_get(card.params, "PHI2F", 0.85, line_no);
      p.theta = kv_get(card.params, "THETA", 0.0, line_no);
      p.vsat_v = kv_get(card.params, "VSAT", 1e9, line_no);
      p.lambda_clm = kv_get(card.params, "CLM", 0.0, line_no);
      return std::make_shared<devices::BsimLiteModel>(p);
    }
  }
  fail(line_no, "unreachable model kind");
}

}  // namespace

double parse_spice_number(const std::string& token) {
  if (token.empty()) throw std::invalid_argument("parse_spice_number: empty token");
  std::size_t pos = 0;
  double value;
  try {
    value = std::stod(token, &pos);
  } catch (const std::exception&) {
    throw std::invalid_argument("parse_spice_number: bad number '" + token + "'");
  }
  std::string suffix = to_upper(token.substr(pos));
  // Trailing unit names (e.g. "10pF", "5nH") are tolerated: the first
  // letters decide the scale.
  if (suffix.rfind("MEG", 0) == 0) return value * 1e6;
  if (suffix.empty()) return value;
  switch (suffix[0]) {
    case 'F': return value * 1e-15;
    case 'P': return value * 1e-12;
    case 'N': return value * 1e-9;
    case 'U': return value * 1e-6;
    case 'M': return value * 1e-3;
    case 'K': return value * 1e3;
    case 'G': return value * 1e9;
    case 'T': return value * 1e12;
    case 'V': case 'A': case 'H': case 'S': case 'O':
      return value;  // bare unit letter, no scale
    default:
      throw std::invalid_argument("parse_spice_number: bad suffix '" + suffix + "'");
  }
}

ParsedNetlist parse_netlist(const std::string& text) {
  ParsedNetlist out;
  std::map<std::string, ModelCard> models;

  // First pass: collect .model cards (global, regardless of position) so
  // device lines can reference them in any order.
  {
    std::istringstream iss(text);
    std::string raw;
    int line_no = 0;
    while (std::getline(iss, raw)) {
      ++line_no;
      auto tokens = tokenize(raw);
      if (tokens.empty()) continue;
      if (to_upper(tokens[0]) != ".MODEL") continue;
      if (tokens.size() < 3) fail(line_no, ".model needs a name and a kind");
      ModelCard card;
      const std::string kind = to_upper(tokens[2]);
      if (kind == "ASDM") card.kind = ModelCard::Kind::kAsdm;
      else if (kind == "ALPHA") card.kind = ModelCard::Kind::kAlpha;
      else if (kind == "BSIM") card.kind = ModelCard::Kind::kBsim;
      else fail(line_no, "unknown model kind '" + tokens[2] + "'");
      std::vector<std::string> rest(tokens.begin() + 3, tokens.end());
      if (!rest.empty() && to_upper(rest.back()) == "PMOS") {
        card.polarity = MosfetPolarity::kPmos;
        rest.pop_back();
      } else if (!rest.empty() && to_upper(rest.back()) == "NMOS") {
        rest.pop_back();
      }
      card.params = parse_kv(rest, 0, line_no);
      models[to_upper(tokens[1])] = card;
    }
  }

  // Second pass: split the text into the top-level body and .subckt blocks.
  struct Card {
    int line_no;
    std::string raw;
    std::vector<std::string> tokens;
  };
  struct SubcktDef {
    std::vector<std::string> ports;
    std::vector<Card> cards;
    int line_no = 0;
  };
  std::map<std::string, SubcktDef> subckts;
  std::vector<Card> body;
  {
    std::istringstream iss(text);
    std::string raw;
    int line_no = 0;
    SubcktDef* open_subckt = nullptr;
    while (std::getline(iss, raw)) {
      ++line_no;
      const auto first_char = raw.find_first_not_of(" \t\r");
      if (first_char != std::string::npos && raw[first_char] == '*') continue;
      auto tokens = tokenize(raw);
      if (tokens.empty()) continue;
      const std::string head = to_upper(tokens[0]);
      if (head == ".SUBCKT") {
        if (open_subckt != nullptr) fail(line_no, "nested .subckt definition");
        if (tokens.size() < 3) fail(line_no, ".subckt needs a name and ports");
        SubcktDef def;
        def.line_no = line_no;
        def.ports.assign(tokens.begin() + 2, tokens.end());
        open_subckt = &(subckts[to_upper(tokens[1])] = def);
        continue;
      }
      if (head == ".ENDS") {
        if (open_subckt == nullptr) fail(line_no, ".ends without .subckt");
        open_subckt = nullptr;
        continue;
      }
      if (head == ".MODEL") continue;  // handled in the first pass
      Card card{line_no, raw, std::move(tokens)};
      if (open_subckt != nullptr)
        open_subckt->cards.push_back(std::move(card));
      else
        body.push_back(std::move(card));
    }
    if (open_subckt != nullptr)
      throw std::invalid_argument("netlist: unterminated .subckt block");
  }

  // Recursive card interpreter. Element and node names inside a subcircuit
  // instance are prefixed "X<name>."; port nodes map to the caller's nodes;
  // "0"/gnd is always global.
  struct KCard {
    std::string name, l1, l2;
    double k = 0.0;
    int line_no;
  };
  std::vector<KCard> k_cards;
  Circuit& ckt = out.circuit;

  struct Scope {
    std::string prefix;                          // "" at top level
    std::map<std::string, std::string> port_map; // local -> canonical outer
  };

  const std::function<void(const Card&, const Scope&, int)> parse_card =
      [&](const Card& card, const Scope& scope, int depth) {
    const auto& tokens = card.tokens;
    const int line_no = card.line_no;
    const std::string head = to_upper(tokens[0]);
    const char kind = head[0];
    const std::string name = scope.prefix + tokens[0];

    const auto node = [&](const std::string& local) -> NodeId {
      if (local == "0" || local == "gnd" || local == "GND") return kGround;
      const auto it = scope.port_map.find(local);
      if (it != scope.port_map.end()) return ckt.node(it->second);
      return ckt.node(scope.prefix + local);
    };
    const auto need = [&](std::size_t n) {
      if (tokens.size() < n) fail(line_no, "too few fields");
    };

    switch (kind) {
      case 'R': {
        need(4);
        ckt.add_resistor(name, node(tokens[1]), node(tokens[2]),
                         parse_spice_number(tokens[3]));
        break;
      }
      case 'C': {
        need(4);
        std::optional<double> ic;
        auto kv = parse_kv(tokens, 4, line_no);
        if (kv.count("IC")) ic = kv["IC"];
        ckt.add_capacitor(name, node(tokens[1]), node(tokens[2]),
                          parse_spice_number(tokens[3]), ic);
        break;
      }
      case 'L': {
        need(4);
        std::optional<double> ic;
        auto kv = parse_kv(tokens, 4, line_no);
        if (kv.count("IC")) ic = kv["IC"];
        ckt.add_inductor(name, node(tokens[1]), node(tokens[2]),
                         parse_spice_number(tokens[3]), ic);
        break;
      }
      case 'V': {
        need(4);
        ckt.add_vsource(name, node(tokens[1]), node(tokens[2]),
                        parse_source_spec(tokens, 3, line_no));
        break;
      }
      case 'I': {
        need(4);
        ckt.add_isource(name, node(tokens[1]), node(tokens[2]),
                        parse_source_spec(tokens, 3, line_no));
        break;
      }
      case 'G': {
        need(6);
        ckt.add_vccs(name, node(tokens[1]), node(tokens[2]), node(tokens[3]),
                     node(tokens[4]), parse_spice_number(tokens[5]));
        break;
      }
      case 'D': {
        need(3);
        auto kv = parse_kv(tokens, 3, line_no);
        const double is = kv.count("IS") ? kv["IS"] : 1e-14;
        const double n = kv.count("N") ? kv["N"] : 1.0;
        ckt.add_diode(name, node(tokens[1]), node(tokens[2]), is, n);
        break;
      }
      case 'M': {
        need(6);
        const std::string model_name = to_upper(tokens[5]);
        const auto it = models.find(model_name);
        if (it == models.end())
          fail(line_no, "unknown model '" + tokens[5] + "'");
        auto model = build_model(it->second, line_no);
        auto kv = parse_kv(tokens, 6, line_no);
        if (kv.count("W") && kv["W"] != 1.0) {  // ssnlint-ignore(SSN-L001)
          model = std::make_shared<devices::ScaledMosfetModel>(model->clone(),
                                                               kv["W"]);
        }
        ckt.add_mosfet(name, node(tokens[1]), node(tokens[2]), node(tokens[3]),
                       node(tokens[4]), std::move(model), it->second.polarity);
        break;
      }
      case 'K': {
        need(4);
        // Inductor references are names in the current scope.
        k_cards.push_back({name, scope.prefix + tokens[1],
                           scope.prefix + tokens[2],
                           parse_spice_number(tokens[3]), line_no});
        break;
      }
      case 'X': {
        need(2);
        if (depth > 16) fail(line_no, "subcircuit nesting too deep");
        const std::string sub_name = to_upper(tokens.back());
        const auto it = subckts.find(sub_name);
        if (it == subckts.end())
          fail(line_no, "unknown subcircuit '" + tokens.back() + "'");
        const SubcktDef& def = it->second;
        if (tokens.size() - 2 != def.ports.size())
          fail(line_no, "subcircuit '" + tokens.back() + "' expects " +
                            std::to_string(def.ports.size()) + " ports, got " +
                            std::to_string(tokens.size() - 2));
        Scope inner;
        inner.prefix = name + ".";
        for (std::size_t i = 0; i < def.ports.size(); ++i) {
          const NodeId outer = node(tokens[i + 1]);
          inner.port_map[def.ports[i]] = ckt.node_name(outer);
        }
        for (const Card& c : def.cards) parse_card(c, inner, depth + 1);
        break;
      }
      default:
        fail(line_no, "unknown card '" + tokens[0] + "'");
    }
  };

  // Walk the top-level body.
  bool first_content_line = true;
  bool ended = false;
  Scope top;
  for (const Card& card : body) {
    if (ended) break;
    const std::string head = to_upper(card.tokens[0]);
    const char kind = head[0];

    // A leading line that is not a recognizable card is the title.
    if (first_content_line && kind != '.' &&
        std::string("RCLVIGDMKX").find(kind) == std::string::npos) {
      out.title = card.raw;
      first_content_line = false;
      continue;
    }
    first_content_line = false;

    if (kind == '.') {
      if (head == ".END") {
        ended = true;
        continue;
      }
      if (head == ".TRAN") {
        if (card.tokens.size() < 3)
          fail(card.line_no, ".tran needs tstep and tstop");
        out.tran = TranDirective{parse_spice_number(card.tokens[1]),
                                 parse_spice_number(card.tokens[2])};
        continue;
      }
      fail(card.line_no, "unknown directive '" + card.tokens[0] + "'");
    }
    parse_card(card, top, 0);
  }

  // Fuse K-coupled inductor pairs into CoupledInductors elements.
  for (const auto& kc : k_cards) {
    auto* l1 = dynamic_cast<Inductor*>(out.circuit.find_element(kc.l1));
    auto* l2 = dynamic_cast<Inductor*>(out.circuit.find_element(kc.l2));
    if (l1 == nullptr || l2 == nullptr)
      fail(kc.line_no, "K card references unknown inductor");
    const NodeId n1a = l1->node1(), n1b = l1->node2();
    const NodeId n2a = l2->node1(), n2b = l2->node2();
    const double lv1 = l1->inductance(), lv2 = l2->inductance();
    out.circuit.remove_element(kc.l1);
    out.circuit.remove_element(kc.l2);
    out.circuit.add_coupled_inductors(kc.name, n1a, n1b, n2a, n2b, lv1, lv2,
                                      kc.k);
  }
  return out;
}

}  // namespace ssnkit::circuit
