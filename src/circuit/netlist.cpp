#include "circuit/netlist.hpp"

#include "circuit/validate.hpp"
#include "devices/alpha_power.hpp"
#include "devices/asdm.hpp"
#include "devices/bsim_lite.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <map>
#include <set>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace ssnkit::circuit {

namespace {

std::string to_upper(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return char(std::toupper(c)); });
  return s;
}

/// Thrown (and always caught inside the parser) after a card-level error
/// was recorded: unwinds to the enclosing per-card loop, which moves on to
/// the next card so the whole file is diagnosed in one pass.
struct CardRecover {};

/// Thrown after a resource-guard violation (SSN-E030) was recorded:
/// unwinds the entire parse. Guards exist to stop *before* memory or stack
/// is exhausted, so there is nothing to recover to.
struct AbortParse {};

/// A token plus its 1-based column in the raw source line.
struct Tok {
  std::string text;
  int col = 0;
};

struct ModelCard {
  enum class Kind { kAsdm, kAlpha, kBsim } kind = Kind::kAsdm;
  MosfetPolarity polarity = MosfetPolarity::kNmos;
  std::map<std::string, double> params;
  int line_no = 0;
};

/// Strip comments and split into tokens, recording original columns.
/// '(' / ')' / ',' are separators; '=' is kept as its own token.
std::vector<Tok> tokenize(const std::string& raw) {
  std::string line = raw;
  for (const char* marker : {";", "//"}) {
    const auto pos = line.find(marker);
    if (pos != std::string::npos) line.erase(pos);
  }
  std::vector<Tok> tokens;
  std::size_t i = 0;
  const auto sep = [](char c) {
    return c == '(' || c == ')' || c == ',';
  };
  while (i < line.size()) {
    const char c = line[i];
    if (std::isspace(static_cast<unsigned char>(c)) != 0 || sep(c)) {
      ++i;
      continue;
    }
    if (c == '=') {
      tokens.push_back({"=", int(i) + 1});
      ++i;
      continue;
    }
    std::size_t j = i;
    while (j < line.size() && std::isspace(static_cast<unsigned char>(line[j])) == 0 &&
           !sep(line[j]) && line[j] != '=')
      ++j;
    tokens.push_back({line.substr(i, j - i), int(i) + 1});
    i = j;
  }
  return tokens;
}

// ---------------------------------------------------------------------------
// The recovering parser.
// ---------------------------------------------------------------------------

class Parser {
 public:
  Parser(const std::string& text, const ParseOptions& opts,
         ParsedNetlist& out, io::DiagnosticSink& sink)
      : text_(text), opts_(opts), out_(out), sink_(sink) {}

  void run() {
    guard_input_size();
    split_lines();
    collect_models();
    collect_structure();
    walk_body();
    fuse_coupled_inductors();
  }

 private:
  struct Card {
    int line_no = 0;
    std::string raw;
    std::vector<Tok> tokens;
  };
  struct SubcktDef {
    std::vector<std::string> ports;
    std::vector<Card> cards;
    int line_no = 0;
  };
  struct KCard {
    std::string name, l1, l2;
    double k = 0.0;
    int line_no = 0;
    int col = 0;
  };
  struct Scope {
    std::string prefix;                           // "" at top level
    std::map<std::string, std::string> port_map;  // local -> canonical outer
  };

  // --- diagnostics ---------------------------------------------------------

  support::SrcLoc loc(int line_no, int col) const {
    return support::SrcLoc{opts_.filename, line_no, col};
  }
  std::string excerpt(int line_no) const {
    return (line_no >= 1 && std::size_t(line_no) <= lines_.size())
               ? lines_[std::size_t(line_no) - 1]
               : std::string();
  }

  [[noreturn]] void fail(int line_no, int col, const std::string& code,
                         const std::string& msg, const std::string& token = {}) {
    sink_.error(loc(line_no, col), code, msg, token, excerpt(line_no));
    if (sink_.overflowed()) throw AbortParse{};
    throw CardRecover{};
  }

  [[noreturn]] void abort(int line_no, int col, const std::string& msg,
                          const std::string& token = {}) {
    sink_.error(loc(line_no, col), "SSN-E030", msg, token, excerpt(line_no));
    throw AbortParse{};
  }

  void warn(int line_no, int col, const std::string& code,
            const std::string& msg, const std::string& token = {}) {
    sink_.warning(loc(line_no, col), code, msg, token, excerpt(line_no));
  }

  // --- resource guards -----------------------------------------------------

  void guard_input_size() {
    if (text_.size() > opts_.limits.max_input_bytes)
      abort(0, 0,
            "input is " + std::to_string(text_.size()) +
                " bytes, over the " +
                std::to_string(opts_.limits.max_input_bytes) + " byte limit");
  }

  void split_lines() {
    std::istringstream iss(text_);
    std::string raw;
    while (std::getline(iss, raw)) {
      if (!raw.empty() && raw.back() == '\r') raw.pop_back();
      lines_.push_back(raw);
      if (raw.size() > opts_.limits.max_line_length)
        abort(int(lines_.size()), 0,
              "line is " + std::to_string(raw.size()) +
                  " characters, over the " +
                  std::to_string(opts_.limits.max_line_length) + " limit");
    }
  }

  std::vector<Tok> tokens_for(int line_no) {
    auto tokens = tokenize(lines_[std::size_t(line_no) - 1]);
    for (const Tok& t : tokens)
      if (t.text.size() > opts_.limits.max_token_length)
        abort(line_no, t.col,
              "token is " + std::to_string(t.text.size()) +
                  " characters, over the " +
                  std::to_string(opts_.limits.max_token_length) + " limit");
    return tokens;
  }

  void count_element(int line_no, int col) {
    if (++elements_added_ > opts_.limits.max_elements)
      abort(line_no, col,
            "expanded element count exceeds the " +
                std::to_string(opts_.limits.max_elements) +
                " element budget (subcircuit expansion bomb?)");
  }

  // --- number helpers ------------------------------------------------------

  double num(int line_no, const Tok& tok) {
    const io::NumberParse p = parse_spice_number_ex(tok.text);
    if (p.ok) return p.value;
    std::string code = "SSN-E001";
    if (p.error.find("suffix") != std::string::npos) code = "SSN-E002";
    if (p.error.find("out of range") != std::string::npos ||
        p.error.find("non-finite") != std::string::npos)
      code = "SSN-E003";
    fail(line_no, tok.col, code, "bad number '" + tok.text + "': " + p.error,
         tok.text);
  }

  /// key=value pairs starting at tokens[start] (tokens look like
  /// "KEY" "=" "value" after tokenize()).
  std::map<std::string, double> parse_kv(const std::vector<Tok>& tokens,
                                         std::size_t start, int line_no) {
    std::map<std::string, double> kv;
    std::size_t i = start;
    while (i < tokens.size()) {
      if (i + 2 >= tokens.size() || tokens[i + 1].text != "=")
        fail(line_no, tokens[i].col, "SSN-E013",
             "expected KEY=VALUE, got '" + tokens[i].text + "'", tokens[i].text);
      kv[to_upper(tokens[i].text)] = num(line_no, tokens[i + 2]);
      i += 3;
    }
    return kv;
  }

  double kv_get(const std::map<std::string, double>& kv, const std::string& key,
                std::optional<double> fallback, int line_no, int col) {
    const auto it = kv.find(key);
    if (it != kv.end()) return it->second;
    if (fallback) return *fallback;
    fail(line_no, col, "SSN-E014", "missing required model parameter " + key,
         key);
  }

  // --- pass 1: .model cards ------------------------------------------------

  void collect_models() {
    for (int line_no = 1; std::size_t(line_no) <= lines_.size(); ++line_no) {
      try {
        auto tokens = tokens_for(line_no);
        if (tokens.empty() || to_upper(tokens[0].text) != ".MODEL") continue;
        parse_model_line(tokens, line_no);
      } catch (const CardRecover&) {
      }
    }
  }

  void parse_model_line(const std::vector<Tok>& tokens, int line_no) {
    if (tokens.size() < 3)
      fail(line_no, tokens[0].col, "SSN-E010",
           ".model needs a name and a kind", tokens[0].text);
    ModelCard card;
    card.line_no = line_no;
    const std::string kind = to_upper(tokens[2].text);
    if (kind == "ASDM") card.kind = ModelCard::Kind::kAsdm;
    else if (kind == "ALPHA") card.kind = ModelCard::Kind::kAlpha;
    else if (kind == "BSIM") card.kind = ModelCard::Kind::kBsim;
    else
      fail(line_no, tokens[2].col, "SSN-E015",
           "unknown model kind '" + tokens[2].text + "'", tokens[2].text);
    std::vector<Tok> rest(tokens.begin() + 3, tokens.end());
    if (!rest.empty() && to_upper(rest.back().text) == "PMOS") {
      card.polarity = MosfetPolarity::kPmos;
      rest.pop_back();
    } else if (!rest.empty() && to_upper(rest.back().text) == "NMOS") {
      rest.pop_back();
    }
    card.params = parse_kv(rest, 0, line_no);
    validate_model_params(card, tokens, line_no);
    const std::string name = to_upper(tokens[1].text);
    if (models_.count(name) != 0)
      warn(line_no, tokens[1].col, "SSN-W107",
           "redefinition of model '" + tokens[1].text + "'", tokens[1].text);
    models_[name] = card;
  }

  /// Range checks on the declared parameters. Bad values fail the card so
  /// a non-physical model can never reach a device constructor.
  void validate_model_params(const ModelCard& card,
                             const std::vector<Tok>& tokens, int line_no) {
    const int col = tokens[0].col;
    const auto positive = [&](const char* key) {
      const auto it = card.params.find(key);
      if (it != card.params.end() && !(it->second > 0.0))
        fail(line_no, col, "SSN-E103",
             std::string("model parameter ") + key +
                 " must be positive, got " + std::to_string(it->second),
             key);
    };
    switch (card.kind) {
      case ModelCard::Kind::kAsdm: {
        positive("K");
        positive("VX");
        positive("LAMBDA");
        const auto it = card.params.find("LAMBDA");
        if (it != card.params.end() &&
            (it->second < 0.25 || it->second > 4.0))
          warn(line_no, col, "SSN-W106",
               "LAMBDA=" + std::to_string(it->second) +
                   " is outside the ASDM's plausible fitted range "
                   "[0.25, 4]",
               "LAMBDA");
        break;
      }
      case ModelCard::Kind::kAlpha:
        positive("VDD");
        positive("ALPHA");
        positive("ID0");
        positive("VD0");
        break;
      case ModelCard::Kind::kBsim:
        positive("KP");
        positive("VSAT");
        break;
    }
  }

  std::shared_ptr<const devices::MosfetModel> build_model(
      const ModelCard& card, int line_no, int col) {
    try {
      switch (card.kind) {
        case ModelCard::Kind::kAsdm: {
          devices::AsdmParams p;
          p.k = kv_get(card.params, "K", std::nullopt, line_no, col);
          p.lambda = kv_get(card.params, "LAMBDA", 1.0, line_no, col);
          p.vx = kv_get(card.params, "VX", std::nullopt, line_no, col);
          return std::make_shared<devices::AsdmModel>(p);
        }
        case ModelCard::Kind::kAlpha: {
          devices::AlphaPowerParams p;
          p.vdd = kv_get(card.params, "VDD", std::nullopt, line_no, col);
          p.vt0 = kv_get(card.params, "VT0", std::nullopt, line_no, col);
          p.alpha = kv_get(card.params, "ALPHA", std::nullopt, line_no, col);
          p.id0 = kv_get(card.params, "ID0", std::nullopt, line_no, col);
          p.vd0 = kv_get(card.params, "VD0", std::nullopt, line_no, col);
          p.gamma = kv_get(card.params, "GAMMA", 0.0, line_no, col);
          p.phi2f = kv_get(card.params, "PHI2F", 0.85, line_no, col);
          p.lambda_clm = kv_get(card.params, "CLM", 0.0, line_no, col);
          return std::make_shared<devices::AlphaPowerModel>(p);
        }
        case ModelCard::Kind::kBsim: {
          devices::BsimLiteParams p;
          p.kp = kv_get(card.params, "KP", std::nullopt, line_no, col);
          p.vt0 = kv_get(card.params, "VT0", std::nullopt, line_no, col);
          p.gamma = kv_get(card.params, "GAMMA", 0.0, line_no, col);
          p.phi2f = kv_get(card.params, "PHI2F", 0.85, line_no, col);
          p.theta = kv_get(card.params, "THETA", 0.0, line_no, col);
          p.vsat_v = kv_get(card.params, "VSAT", 1e9, line_no, col);
          p.lambda_clm = kv_get(card.params, "CLM", 0.0, line_no, col);
          return std::make_shared<devices::BsimLiteModel>(p);
        }
      }
    } catch (const CardRecover&) {
      throw;  // already diagnosed by kv_get
    } catch (const std::exception& e) {
      // Device constructors validate their parameters; surface the reason
      // with the model line's location instead of leaking the raw throw.
      fail(line_no, col, "SSN-E040",
           std::string("model rejected: ") + e.what());
    }
    fail(line_no, col, "SSN-E015", "unreachable model kind");
  }

  // --- pass 2: structure (subckt blocks vs. top-level body) ---------------

  void collect_structure() {
    SubcktDef* open_subckt = nullptr;
    int open_line = 0;
    for (int line_no = 1; std::size_t(line_no) <= lines_.size(); ++line_no) {
      try {
        const std::string& raw = lines_[std::size_t(line_no) - 1];
        const auto first_char = raw.find_first_not_of(" \t\r");
        if (first_char != std::string::npos && raw[first_char] == '*') continue;
        auto tokens = tokens_for(line_no);
        if (tokens.empty()) continue;
        const std::string head = to_upper(tokens[0].text);
        if (head == ".SUBCKT") {
          if (open_subckt != nullptr)
            fail(line_no, tokens[0].col, "SSN-E020",
                 "nested .subckt definition (previous .subckt on line " +
                     std::to_string(open_line) + " has no .ends)",
                 tokens[0].text);
          if (tokens.size() < 3)
            fail(line_no, tokens[0].col, "SSN-E010",
                 ".subckt needs a name and ports", tokens[0].text);
          SubcktDef def;
          def.line_no = line_no;
          std::set<std::string> port_names;
          for (std::size_t i = 2; i < tokens.size(); ++i) {
            if (!port_names.insert(tokens[i].text).second)
              fail(line_no, tokens[i].col, "SSN-E020",
                   "duplicate port '" + tokens[i].text + "' in .subckt",
                   tokens[i].text);
            def.ports.push_back(tokens[i].text);
          }
          const std::string name = to_upper(tokens[1].text);
          if (subckts_.count(name) != 0)
            warn(line_no, tokens[1].col, "SSN-W107",
                 "redefinition of subcircuit '" + tokens[1].text + "'",
                 tokens[1].text);
          open_subckt = &(subckts_[name] = def);
          open_line = line_no;
          continue;
        }
        if (head == ".ENDS") {
          if (open_subckt == nullptr)
            fail(line_no, tokens[0].col, "SSN-E020", ".ends without .subckt",
                 tokens[0].text);
          open_subckt = nullptr;
          continue;
        }
        if (head == ".MODEL") continue;  // handled in the first pass
        Card card{line_no, raw, std::move(tokens)};
        if (open_subckt != nullptr)
          open_subckt->cards.push_back(std::move(card));
        else
          body_.push_back(std::move(card));
      } catch (const CardRecover&) {
      }
    }
    if (open_subckt != nullptr)
      sink_.error(loc(open_line, 1), "SSN-E020",
                  "unterminated .subckt block (no matching .ends)", ".subckt",
                  excerpt(open_line));
  }

  // --- card interpreter ----------------------------------------------------

  void walk_body() {
    bool first_content_line = true;
    bool ended = false;
    const Scope top;
    for (const Card& card : body_) {
      if (ended) break;
      try {
        const std::string head = to_upper(card.tokens[0].text);
        const char kind = head[0];

        // A leading line that is not a recognizable card is the title.
        if (first_content_line && kind != '.' &&
            std::string("RCLVIGDMKX").find(kind) == std::string::npos) {
          out_.title = card.raw;
          first_content_line = false;
          continue;
        }
        first_content_line = false;

        if (kind == '.') {
          if (head == ".END") {
            ended = true;
            continue;
          }
          if (head == ".TRAN") {
            parse_tran(card);
            continue;
          }
          fail(card.line_no, card.tokens[0].col, "SSN-E012",
               "unknown directive '" + card.tokens[0].text + "'",
               card.tokens[0].text);
        }
        parse_card(card, top, 0);
      } catch (const CardRecover&) {
      }
    }
  }

  void parse_tran(const Card& card) {
    if (card.tokens.size() < 3)
      fail(card.line_no, card.tokens[0].col, "SSN-E010",
           ".tran needs tstep and tstop", card.tokens[0].text);
    TranDirective tran{num(card.line_no, card.tokens[1]),
                       num(card.line_no, card.tokens[2])};
    if (!(tran.tstep > 0.0) || !(tran.tstop > 0.0))
      fail(card.line_no, card.tokens[1].col, "SSN-E103",
           ".tran times must be positive", card.tokens[1].text);
    if (tran.tstep > tran.tstop)
      warn(card.line_no, card.tokens[1].col, "SSN-W106",
           ".tran tstep is larger than tstop", card.tokens[1].text);
    out_.tran = tran;
  }

  void parse_card(const Card& card, const Scope& scope, int depth) {
    const auto& tokens = card.tokens;
    const int line_no = card.line_no;
    const int col = tokens[0].col;
    const std::string head = to_upper(tokens[0].text);
    const char kind = head[0];
    const std::string name = scope.prefix + tokens[0].text;
    Circuit& ckt = out_.circuit;

    const auto node = [&](const Tok& local) -> NodeId {
      if (local.text == "0" || local.text == "gnd" || local.text == "GND")
        return kGround;
      const auto it = scope.port_map.find(local.text);
      if (it != scope.port_map.end()) return ckt.node(it->second);
      return ckt.node(scope.prefix + local.text);
    };
    const auto need = [&](std::size_t n) {
      if (tokens.size() < n)
        fail(line_no, col,
             "SSN-E010",
             "too few fields for a '" + std::string(1, kind) + "' card (need " +
                 std::to_string(n) + ", got " + std::to_string(tokens.size()) +
                 ")",
             tokens[0].text);
    };
    // Circuit::add_* validates names and values (duplicates, R/L/C <= 0,
    // |k| >= 1, ...); surface its rejection with this card's location.
    const auto guarded = [&](const auto& add) {
      count_element(line_no, col);
      try {
        add();
      } catch (const std::exception& e) {
        fail(line_no, col, "SSN-E040",
             std::string("element rejected: ") + e.what(), tokens[0].text);
      }
    };

    switch (kind) {
      case 'R': {
        need(4);
        const double ohms = num(line_no, tokens[3]);
        guarded([&] {
          ckt.add_resistor(name, node(tokens[1]), node(tokens[2]), ohms);
        });
        break;
      }
      case 'C': {
        need(4);
        std::optional<double> ic;
        auto kv = parse_kv(tokens, 4, line_no);
        if (kv.count("IC")) ic = kv["IC"];
        const double farads = num(line_no, tokens[3]);
        guarded([&] {
          ckt.add_capacitor(name, node(tokens[1]), node(tokens[2]), farads, ic);
        });
        break;
      }
      case 'L': {
        need(4);
        std::optional<double> ic;
        auto kv = parse_kv(tokens, 4, line_no);
        if (kv.count("IC")) ic = kv["IC"];
        const double henries = num(line_no, tokens[3]);
        guarded([&] {
          ckt.add_inductor(name, node(tokens[1]), node(tokens[2]), henries, ic);
        });
        break;
      }
      case 'V': {
        need(4);
        auto spec = parse_source_spec(tokens, 3, line_no);
        guarded([&] {
          ckt.add_vsource(name, node(tokens[1]), node(tokens[2]),
                          std::move(spec));
        });
        break;
      }
      case 'I': {
        need(4);
        auto spec = parse_source_spec(tokens, 3, line_no);
        guarded([&] {
          ckt.add_isource(name, node(tokens[1]), node(tokens[2]),
                          std::move(spec));
        });
        break;
      }
      case 'G': {
        need(6);
        const double gm = num(line_no, tokens[5]);
        guarded([&] {
          ckt.add_vccs(name, node(tokens[1]), node(tokens[2]), node(tokens[3]),
                       node(tokens[4]), gm);
        });
        break;
      }
      case 'D': {
        need(3);
        auto kv = parse_kv(tokens, 3, line_no);
        const double is = kv.count("IS") ? kv["IS"] : 1e-14;
        const double n = kv.count("N") ? kv["N"] : 1.0;
        guarded([&] {
          ckt.add_diode(name, node(tokens[1]), node(tokens[2]), is, n);
        });
        break;
      }
      case 'M': {
        need(6);
        const std::string model_name = to_upper(tokens[5].text);
        const auto it = models_.find(model_name);
        if (it == models_.end())
          fail(line_no, tokens[5].col, "SSN-E015",
               "unknown model '" + tokens[5].text + "'", tokens[5].text);
        auto model = build_model(it->second, line_no, col);
        auto kv = parse_kv(tokens, 6, line_no);
        if (kv.count("W") && kv["W"] != 1.0) {  // ssnlint-ignore(SSN-L001)
          model = std::make_shared<devices::ScaledMosfetModel>(model->clone(),
                                                               kv["W"]);
        }
        guarded([&] {
          ckt.add_mosfet(name, node(tokens[1]), node(tokens[2]),
                         node(tokens[3]), node(tokens[4]), std::move(model),
                         it->second.polarity);
        });
        break;
      }
      case 'K': {
        need(4);
        if (tokens[1].text == tokens[2].text)
          fail(line_no, tokens[2].col, "SSN-E021",
               "K card couples inductor '" + tokens[1].text + "' to itself",
               tokens[2].text);
        // Inductor references are names in the current scope.
        k_cards_.push_back({name, scope.prefix + tokens[1].text,
                            scope.prefix + tokens[2].text,
                            num(line_no, tokens[3]), line_no, col});
        break;
      }
      case 'X': {
        need(2);
        if (depth >= opts_.limits.max_subckt_depth)
          abort(line_no, col,
                "subcircuit nesting deeper than " +
                    std::to_string(opts_.limits.max_subckt_depth) +
                    " (recursive definition?)",
                tokens[0].text);
        const std::string sub_name = to_upper(tokens.back().text);
        const auto it = subckts_.find(sub_name);
        if (it == subckts_.end())
          fail(line_no, tokens.back().col, "SSN-E020",
               "unknown subcircuit '" + tokens.back().text + "'",
               tokens.back().text);
        const SubcktDef& def = it->second;
        if (tokens.size() - 2 != def.ports.size())
          fail(line_no, col,
               "SSN-E020",
               "subcircuit '" + tokens.back().text + "' expects " +
                   std::to_string(def.ports.size()) + " ports, got " +
                   std::to_string(tokens.size() - 2),
               tokens.back().text);
        Scope inner;
        inner.prefix = name + ".";
        for (std::size_t i = 0; i < def.ports.size(); ++i) {
          const NodeId outer = node(tokens[i + 1]);
          inner.port_map[def.ports[i]] = out_.circuit.node_name(outer);
        }
        for (const Card& c : def.cards) {
          try {
            parse_card(c, inner, depth + 1);
          } catch (const CardRecover&) {
          }
        }
        break;
      }
      default:
        fail(line_no, col, "SSN-E011", "unknown card '" + tokens[0].text + "'",
             tokens[0].text);
    }
  }

  waveform::SourceSpec parse_source_spec(const std::vector<Tok>& tokens,
                                         std::size_t start, int line_no) {
    if (start >= tokens.size())
      fail(line_no, tokens.back().col, "SSN-E010",
           "missing source specification");
    const std::string kind = to_upper(tokens[start].text);
    const auto arg = [&](std::size_t i) -> double {
      if (start + i >= tokens.size())
        fail(line_no, tokens.back().col, "SSN-E010", "missing source argument",
             tokens.back().text);
      return num(line_no, tokens[start + i]);
    };
    const std::size_t argc = tokens.size() - start - 1;
    if (kind == "DC") {
      if (argc < 1)
        fail(line_no, tokens[start].col, "SSN-E010", "DC needs a value",
             tokens[start].text);
      return waveform::Dc{arg(1)};
    }
    if (kind == "RAMP") {
      if (argc < 4)
        fail(line_no, tokens[start].col, "SSN-E010",
             "RAMP needs (v0 v1 tstart trise)", tokens[start].text);
      return waveform::Ramp{arg(1), arg(2), arg(3), arg(4)};
    }
    if (kind == "PULSE") {
      if (argc < 7)
        fail(line_no, tokens[start].col, "SSN-E010",
             "PULSE needs (v0 v1 delay rise fall width period)",
             tokens[start].text);
      return waveform::Pulse{arg(1), arg(2), arg(3), arg(4),
                             arg(5), arg(6), arg(7)};
    }
    if (kind == "PWL") {
      if (argc < 2 || argc % 2 != 0)
        fail(line_no, tokens[start].col, "SSN-E010", "PWL needs t/v pairs",
             tokens[start].text);
      waveform::Pwl pwl;
      for (std::size_t i = 1; i + 1 <= argc; i += 2)
        pwl.points.emplace_back(arg(i), arg(i + 1));
      return pwl;
    }
    if (kind == "SIN") {
      if (argc < 3)
        fail(line_no, tokens[start].col, "SSN-E010",
             "SIN needs (offset amplitude freq [delay])", tokens[start].text);
      waveform::Sine s{arg(1), arg(2), arg(3), 0.0};
      if (argc >= 4) s.delay = arg(4);
      return s;
    }
    // Bare number: treat as DC.
    const io::NumberParse p = parse_spice_number_ex(tokens[start].text);
    if (p.ok) return waveform::Dc{p.value};
    fail(line_no, tokens[start].col, "SSN-E011",
         "unknown source kind '" + kind + "'", tokens[start].text);
  }

  // --- K-card fusion -------------------------------------------------------

  void fuse_coupled_inductors() {
    for (const auto& kc : k_cards_) {
      try {
        auto* l1 = dynamic_cast<Inductor*>(out_.circuit.find_element(kc.l1));
        auto* l2 = dynamic_cast<Inductor*>(out_.circuit.find_element(kc.l2));
        if (l1 == nullptr || l2 == nullptr)
          fail(kc.line_no, kc.col, "SSN-E021",
               "K card references unknown inductor '" +
                   (l1 == nullptr ? kc.l1 : kc.l2) + "'",
               kc.name);
        const NodeId n1a = l1->node1(), n1b = l1->node2();
        const NodeId n2a = l2->node1(), n2b = l2->node2();
        const double lv1 = l1->inductance(), lv2 = l2->inductance();
        try {
          out_.circuit.remove_element(kc.l1);
          out_.circuit.remove_element(kc.l2);
          out_.circuit.add_coupled_inductors(kc.name, n1a, n1b, n2a, n2b, lv1,
                                             lv2, kc.k);
        } catch (const std::exception& e) {
          fail(kc.line_no, kc.col, "SSN-E040",
               std::string("coupling rejected: ") + e.what(), kc.name);
        }
      } catch (const CardRecover&) {
      }
    }
  }

  const std::string& text_;
  const ParseOptions& opts_;
  ParsedNetlist& out_;
  io::DiagnosticSink& sink_;

  std::vector<std::string> lines_;
  std::map<std::string, ModelCard> models_;
  std::map<std::string, SubcktDef> subckts_;
  std::vector<Card> body_;
  std::vector<KCard> k_cards_;
  std::size_t elements_added_ = 0;
};

}  // namespace

io::NumberParse parse_spice_number_ex(const std::string& token) {
  io::NumberParse p;
  if (token.empty()) {
    p.error = "empty token";
    return p;
  }
  p = io::parse_double_prefix(token);
  if (!p.ok) return p;
  const std::string suffix = to_upper(token.substr(p.consumed));
  double scale = 1.0;
  if (suffix.rfind("MEG", 0) == 0) {
    scale = 1e6;
  } else if (!suffix.empty()) {
    // Trailing unit names (e.g. "10pF", "5nH") are tolerated: the first
    // letter decides the scale.
    switch (suffix[0]) {
      case 'F': scale = 1e-15; break;
      case 'P': scale = 1e-12; break;
      case 'N': scale = 1e-9; break;
      case 'U': scale = 1e-6; break;
      case 'M': scale = 1e-3; break;
      case 'K': scale = 1e3; break;
      case 'G': scale = 1e9; break;
      case 'T': scale = 1e12; break;
      case 'V': case 'A': case 'H': case 'S': case 'O':
        scale = 1.0;  // bare unit letter, no scale
        break;
      default:
        p.ok = false;
        p.error = "bad suffix '" + suffix + "'";
        return p;
    }
  }
  p.value *= scale;
  if (!std::isfinite(p.value)) {
    p.ok = false;
    p.error = "non-finite value after applying suffix '" + suffix + "'";
    return p;
  }
  p.consumed = token.size();
  return p;
}

double parse_spice_number(const std::string& token) {
  const io::NumberParse p = parse_spice_number_ex(token);
  if (!p.ok)
    throw std::invalid_argument("parse_spice_number: " + p.error + " in '" +
                                token + "'");
  return p.value;
}

NetlistParseResult parse_netlist_ex(const std::string& text,
                                    const ParseOptions& options) {
  NetlistParseResult result;
  result.diagnostics = io::DiagnosticSink(options.limits.max_errors);
  Parser parser(text, options, result.netlist, result.diagnostics);
  try {
    parser.run();
  } catch (const AbortParse&) {
    // The guard violation is already in the sink; the partial netlist is
    // returned as-is (ok will be false).
  }
  // Semantic validation only makes sense on a syntactically clean,
  // non-empty parse; an empty netlist is legal at this layer.
  if (!result.diagnostics.has_errors() && options.validate &&
      !result.netlist.circuit.elements().empty()) {
    ValidateOptions vopt;
    vopt.source_name = options.filename;
    validate_circuit(result.netlist.circuit, result.diagnostics, vopt);
  }
  result.ok = !result.diagnostics.has_errors();
  return result;
}

ParsedNetlist parse_netlist(const std::string& text) {
  NetlistParseResult result = parse_netlist_ex(text);
  if (!result.ok) throw io::ParseError(result.diagnostics);
  return std::move(result.netlist);
}

}  // namespace ssnkit::circuit
