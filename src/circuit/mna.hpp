// Modified nodal analysis plumbing: unknown numbering, stamp helpers and
// the per-iteration context handed to every element.
//
// Unknown vector layout: x = [v(1) .. v(N-1), i(branch 0) .. i(branch B-1)]
// where node 0 is ground (not an unknown) and each voltage-defined element
// (voltage source, inductor) owns one branch-current unknown.
#pragma once

#include "numeric/complex_la.hpp"
#include "numeric/matrix.hpp"
#include "numeric/sparse.hpp"

namespace ssnkit::circuit {

using NodeId = int;  ///< 0 is ground
inline constexpr NodeId kGround = 0;

/// What the engine is currently solving.
enum class AnalysisMode {
  kDc,         ///< capacitors open, inductors shorted, sources at t = 0
  kTransient,  ///< companion models active
};

/// Numerical integration method for the transient companion models.
enum class Integrator {
  kBackwardEuler,
  kTrapezoidal,
  kGear2,
};

/// Discretization of d/dt for the current step:
///   dx/dt |_{n+1}  ~=  a0*x_{n+1} + a1*x_n + a2*x_{n-1}      (BE, Gear2)
///   dx/dt |_{n+1}  ~=  a0*(x_{n+1} - x_n) - xdot_n           (trapezoidal)
/// Elements combine these with their stored history in stamp().
struct IntegrationCoeffs {
  Integrator method = Integrator::kBackwardEuler;
  double h = 0.0;   ///< current step size
  double a0 = 0.0;
  double a1 = 0.0;
  double a2 = 0.0;  ///< only nonzero for Gear2
};

/// Everything an element needs to stamp itself for one Newton iteration.
/// Exactly one Jacobian target is set: `a` (dense, used by whitebox tests
/// and small one-shot assemblies) or `sa` (the engine's fixed-pattern
/// sparse workspace). Elements never write either directly — all matrix
/// writes go through the stamp helpers, which dispatch to the live target.
struct StampContext {
  AnalysisMode mode = AnalysisMode::kDc;
  double time = 0.0;                 ///< time being solved for
  IntegrationCoeffs coeffs;          ///< valid when mode == kTransient
  const numeric::Vector* x = nullptr;  ///< current Newton iterate
  numeric::Matrix* a = nullptr;      ///< dense Jacobian target (pre-zeroed)
  numeric::StampedMatrix* sa = nullptr;  ///< sparse Jacobian target
  numeric::Vector* b = nullptr;      ///< system RHS (pre-zeroed)
  double gmin = 0.0;                 ///< homotopy conductance to ground
  double source_scale = 1.0;         ///< DC source-stepping homotopy factor

  /// Voltage of a node under the current iterate (0 for ground).
  double v(NodeId n) const {
    return n == kGround ? 0.0 : (*x)[std::size_t(n - 1)];
  }
  /// Current of branch unknown `idx` under the current iterate.
  double branch_current(int node_count, int idx) const {
    return (*x)[std::size_t(node_count - 1 + idx)];
  }

  // --- stamp helpers (all ignore ground rows/columns) ---------------------

  /// Conductance g between nodes n1 and n2.
  void stamp_conductance(NodeId n1, NodeId n2, double g) const;
  /// Current `i` flowing out of node `from` into node `to` (i.e. a source
  /// pushing current from -> to externally adds +i at `to`, -i at `from`).
  void stamp_current(NodeId from, NodeId to, double i) const;
  /// Transconductance: current g*(v(cp)-v(cm)) flowing from out_p to out_m.
  void stamp_vccs(NodeId out_p, NodeId out_m, NodeId cp, NodeId cm,
                  double g) const;
  /// Jacobian entry dI(row_node)/dV(col_node) += g.
  void stamp_jacobian(NodeId row_node, NodeId col_node, double g) const;
  /// RHS entry for a node's KCL row.
  void stamp_rhs(NodeId node, double value) const;

  // --- branch-row helpers (row = node_count-1+branch) ----------------------
  int branch_row(int node_count, int branch) const {
    return node_count - 1 + branch;
  }
  /// Incidence of branch current `branch` into node KCL rows: +1 out of
  /// node `p`, into node `m`; plus the voltage terms in the branch row.
  void stamp_branch_incidence(int node_count, int branch, NodeId p,
                              NodeId m) const;
  /// Coefficient of unknown `col_node` voltage in the branch row.
  void stamp_branch_voltage(int node_count, int branch, NodeId col_node,
                            double coeff) const;
  /// Coefficient of the branch current itself in the branch row.
  void stamp_branch_current_coeff(int node_count, int branch,
                                  double coeff) const;
  /// Cross term between two branch currents (coupled inductors).
  void stamp_branch_cross(int node_count, int row_branch, int col_branch,
                          double coeff) const;
  /// RHS of the branch row.
  void stamp_branch_rhs(int node_count, int branch, double value) const;

 private:
  /// Accumulate into the live Jacobian target (dense or sparse).
  void add_a(std::size_t r, std::size_t c, double v) const;
};

/// Context for small-signal (AC) stamping: the complex MNA system
/// (G + j*omega*C) x = b, linearized around the DC operating point x_op.
struct AcStampContext {
  double omega = 0.0;                     ///< angular frequency [rad/s]
  const numeric::Vector* x_op = nullptr;  ///< DC operating point
  numeric::CMatrix* a = nullptr;
  numeric::CVector* b = nullptr;

  /// Operating-point voltage of a node (0 for ground).
  double v_op(NodeId n) const {
    return n == kGround ? 0.0 : (*x_op)[std::size_t(n - 1)];
  }

  void stamp_admittance(NodeId n1, NodeId n2, numeric::Complex y) const;
  void stamp_jacobian(NodeId row_node, NodeId col_node, numeric::Complex y) const;
  void stamp_current(NodeId from, NodeId to, numeric::Complex i) const;
  void stamp_vccs(NodeId out_p, NodeId out_m, NodeId cp, NodeId cm,
                  double g) const;

  int branch_row(int node_count, int branch) const {
    return node_count - 1 + branch;
  }
  void stamp_branch_incidence(int node_count, int branch, NodeId p,
                              NodeId m) const;
  void stamp_branch_current_coeff(int node_count, int branch,
                                  numeric::Complex coeff) const;
  /// Cross term between two branch currents (coupled inductors).
  void stamp_branch_cross(int node_count, int row_branch, int col_branch,
                          numeric::Complex coeff) const;
  void stamp_branch_rhs(int node_count, int branch, numeric::Complex value) const;
};

}  // namespace ssnkit::circuit
