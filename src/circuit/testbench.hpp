// Factory for the paper's experimental setup: N identical output drivers
// discharging their pad loads simultaneously through a shared ground
// parasitic network (Fig. 2/3/4 of the paper).
//
// Topology per driver i:
//
//      vdd ----+---[PMOS]---+--- out_i ---||--- 0   (load C_L to board gnd)
//              |            |
//   in_i ------+------------+
//              |            |
//              +---[NMOS]---+
//                    |
//                  vssi  --- L (+ optional R) --- 0, and C_pad from vssi to 0
//
// The NMOS bulk is tied to the quiet substrate (true ground) by default —
// this is what makes the fitted ASDM lambda exceed 1 (body effect of the
// bouncing source). A 1 GOhm anchor from each output to vdd keeps the DC
// operating point well-posed even when the pull-up is omitted.
#pragma once

#include "circuit/circuit.hpp"
#include "process/package.hpp"
#include "process/technology.hpp"

#include <memory>
#include <string>
#include <vector>

namespace ssnkit::circuit {

struct SsnBenchSpec {
  process::Technology tech = process::tech_180nm();
  process::Package package = process::package_pga();
  int n_drivers = 8;            ///< drivers switching simultaneously (paper's N)
  int n_quiet = 0;              ///< extra drivers whose inputs stay low
  double input_rise_time = 0.1e-9;  ///< t_r; the paper's slope S = vdd / t_r
  double load_cap = 0.0;        ///< per-driver pad load [F]; 0 = tech default
  double driver_width_mult = 1.0;
  process::GoldenKind golden = process::GoldenKind::kAlphaPower;
  /// Replace the golden pull-down with a specific device (e.g. the fitted
  /// AsdmModel) to isolate formula error from device-fit error.
  std::shared_ptr<const devices::MosfetModel> pulldown_override;
  bool include_package_r = false;  ///< the paper neglects the 10 mOhm R
  bool include_package_c = true;   ///< Section 3 benches set this false
  bool include_pullup = true;      ///< full inverter driver vs bare pull-down
  bool bulk_to_vssi = false;       ///< tie NMOS bulk to the bouncing rail
  std::vector<double> stagger;     ///< per-driver input delay [s]; empty = all 0

  void validate() const;
};

/// The built circuit plus the probe names the analyses need.
struct SsnBench {
  Circuit circuit;
  std::string vssi_node = "vssi";       ///< the bouncing internal ground
  std::string vdd_node = "vdd";
  std::string inductor_name = "Lgnd";   ///< branch current = total SSN current
  std::vector<std::string> input_nodes;
  std::vector<std::string> output_nodes;
  double t_ramp_start = 0.0;            ///< earliest input ramp start
  double t_ramp_end = 0.0;              ///< latest input ramp end
  double slope = 0.0;                   ///< input slope S [V/s]
};

SsnBench make_ssn_testbench(const SsnBenchSpec& spec);

}  // namespace ssnkit::circuit
