// The Circuit owns nodes and elements and hands the simulator a finalized
// view (node count, branch count, element list). Build programmatically via
// the add_* methods or from text via circuit::parse_netlist().
#pragma once

#include "circuit/elements.hpp"

#include <map>
#include <memory>
#include <string>
#include <vector>

namespace ssnkit::circuit {

class Circuit {
 public:
  Circuit();

  /// Get or create a named node. "0" and "gnd" map to ground.
  NodeId node(const std::string& name);
  /// Look up an existing node; throws std::out_of_range when unknown.
  NodeId find_node(const std::string& name) const;
  bool has_node(const std::string& name) const;
  const std::string& node_name(NodeId id) const;

  /// Total node count including ground.
  int node_count() const { return int(node_names_.size()); }

  // --- element factories (all return a reference to the new element) -------
  Resistor& add_resistor(const std::string& name, NodeId n1, NodeId n2,
                         double ohms);
  Capacitor& add_capacitor(const std::string& name, NodeId n1, NodeId n2,
                           double farads,
                           std::optional<double> ic = std::nullopt);
  Inductor& add_inductor(const std::string& name, NodeId n1, NodeId n2,
                         double henries,
                         std::optional<double> ic = std::nullopt);
  CoupledInductors& add_coupled_inductors(const std::string& name, NodeId n1a,
                                          NodeId n1b, NodeId n2a, NodeId n2b,
                                          double l1, double l2, double k);
  VoltageSource& add_vsource(const std::string& name, NodeId p, NodeId m,
                             waveform::SourceSpec spec);
  CurrentSource& add_isource(const std::string& name, NodeId p, NodeId m,
                             waveform::SourceSpec spec);
  Vccs& add_vccs(const std::string& name, NodeId out_p, NodeId out_m,
                 NodeId ctl_p, NodeId ctl_m, double gm);
  Diode& add_diode(const std::string& name, NodeId anode, NodeId cathode,
                   double is = 1e-14, double n = 1.0);
  Mosfet& add_mosfet(const std::string& name, NodeId d, NodeId g, NodeId s,
                     NodeId b, std::shared_ptr<const devices::MosfetModel> model,
                     MosfetPolarity polarity = MosfetPolarity::kNmos);

  const std::vector<std::unique_ptr<Element>>& elements() const {
    return elements_;
  }
  /// Find an element by name; nullptr when absent.
  Element* find_element(const std::string& name) const;
  /// Remove an element by name (used by the netlist front end to fuse
  /// K-coupled inductor pairs); throws std::invalid_argument when absent.
  void remove_element(const std::string& name);

  /// Assign branch indices and element node counts. Called by the solvers;
  /// idempotent. Returns the number of unknowns (nodes-1 + branches).
  int finalize();
  int branch_count() const { return branch_total_; }
  int unknown_count() const { return node_count() - 1 + branch_total_; }

  /// Unknown index of a node voltage (node must not be ground).
  int voltage_index(NodeId n) const;
  /// Unknown index of an element's branch current; the element must own a
  /// branch (throws std::invalid_argument otherwise).
  int branch_unknown_index(const Element& e) const;

 private:
  template <typename T, typename... Args>
  T& emplace(Args&&... args);

  std::map<std::string, NodeId> node_ids_;
  std::vector<std::string> node_names_;
  std::vector<std::unique_ptr<Element>> elements_;
  int branch_total_ = 0;
  bool finalized_ = false;
};

}  // namespace ssnkit::circuit
