// Tapered output-driver chains. A pad driver is never one inverter: a
// chain of geometrically growing stages (taper factor a) brings the core
// signal up to the final device's width. The taper sets how sharp the
// final gate's edge is — and the SSN literature the paper builds on
// (Vemuru, TVLSI 1997 [11]) shows that taper therefore trades output delay
// against ground bounce. This builder creates N parallel tapered drivers
// sharing a ground parasitic network so that trade-off can be measured.
#pragma once

#include "circuit/circuit.hpp"
#include "process/package.hpp"
#include "process/technology.hpp"

#include <string>
#include <vector>

namespace ssnkit::circuit {

struct TaperedDriverSpec {
  process::Technology tech = process::tech_180nm();
  process::Package package = process::package_pga();
  int n_drivers = 4;
  int stages = 4;         ///< inverters per chain, >= 1
  double taper = 3.0;     ///< width ratio between consecutive stages, > 1
  /// Width multiplier of the FINAL stage (the pad device); earlier stages
  /// shrink by the taper factor each.
  double final_width = 1.0;
  double input_rise_time = 0.3e-9;  ///< edge arriving from the core
  double load_cap = 0.0;            ///< pad load; 0 = tech default
  process::GoldenKind golden = process::GoldenKind::kAlphaPower;
  /// Pre-driver stages usually return through the same noisy I/O ground;
  /// set false to give them an ideal (quiet) core ground.
  bool predrivers_on_noisy_ground = true;
  bool include_package_c = true;

  void validate() const;
};

struct TaperedDriverBench {
  Circuit circuit;
  std::string vssi_node = "vssi";
  std::string inductor_name = "Lgnd";
  std::vector<std::string> input_nodes;   ///< chain inputs (core side)
  std::vector<std::string> output_nodes;  ///< pad nodes
  /// Gate node of the final stage of driver 0 (to observe the internal
  /// edge sharpening).
  std::string final_gate_node;
  double t_ramp_end = 0.0;
};

/// The input edge polarity is chosen automatically so that the final
/// stage's NMOS turns ON (pad discharges) — the SSN-generating direction.
TaperedDriverBench make_tapered_driver_bench(const TaperedDriverSpec& spec);

}  // namespace ssnkit::circuit
