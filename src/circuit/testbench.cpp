#include "circuit/testbench.hpp"

#include "support/contracts.hpp"

#include <stdexcept>

namespace ssnkit::circuit {

void SsnBenchSpec::validate() const {
  tech.validate();
  package.validate();
  SSN_REQUIRE(n_drivers >= 1, "SsnBenchSpec: n_drivers must be >= 1");
  SSN_REQUIRE(n_quiet >= 0, "SsnBenchSpec: n_quiet must be >= 0");
  SSN_REQUIRE(input_rise_time > 0.0, "SsnBenchSpec: input_rise_time must be > 0");
  SSN_REQUIRE(load_cap >= 0.0, "SsnBenchSpec: load_cap must be >= 0");
  SSN_REQUIRE(driver_width_mult > 0.0,
              "SsnBenchSpec: driver_width_mult must be > 0");
  SSN_REQUIRE(stagger.empty() || int(stagger.size()) == n_drivers,
              "SsnBenchSpec: stagger must be empty or have n_drivers entries");
  for (double s : stagger)
    SSN_REQUIRE(s >= 0.0, "SsnBenchSpec: stagger must be >= 0");
}

SsnBench make_ssn_testbench(const SsnBenchSpec& spec) {
  spec.validate();
  SsnBench bench;
  Circuit& ckt = bench.circuit;

  const double vdd = spec.tech.vdd;
  const double cl = spec.load_cap > 0.0 ? spec.load_cap : spec.tech.load_cap;

  const NodeId gnd = kGround;
  const NodeId n_vdd = ckt.node(bench.vdd_node);
  const NodeId n_vssi = ckt.node(bench.vssi_node);
  const NodeId n_bulk = spec.bulk_to_vssi ? n_vssi : gnd;

  ckt.add_vsource("Vdd", n_vdd, gnd, waveform::Dc{vdd});

  // Ground return path: vssi --L(--R)-- 0 with the pad capacitance from
  // vssi to the true ground.
  if (spec.include_package_r && spec.package.resistance > 0.0) {
    const NodeId mid = ckt.node("vss_r");
    ckt.add_inductor(bench.inductor_name, n_vssi, mid, spec.package.inductance);
    ckt.add_resistor("Rgnd", mid, gnd, spec.package.resistance);
  } else {
    ckt.add_inductor(bench.inductor_name, n_vssi, gnd, spec.package.inductance);
  }
  if (spec.include_package_c && spec.package.capacitance > 0.0) {
    ckt.add_capacitor("Cpad", n_vssi, gnd, spec.package.capacitance);
  }

  // Shared device models: one instance serves all identical drivers.
  std::shared_ptr<const devices::MosfetModel> nmos;
  if (spec.pulldown_override) {
    nmos = spec.driver_width_mult == 1.0  // ssnlint-ignore(SSN-L001)
               ? spec.pulldown_override
               : std::make_shared<devices::ScaledMosfetModel>(
                     spec.pulldown_override->clone(), spec.driver_width_mult);
  } else {
    nmos = std::shared_ptr<const devices::MosfetModel>(
        spec.tech.make_golden(spec.golden, spec.driver_width_mult));
  }
  // Pull-up: the same golden device mirrored (the element handles PMOS
  // polarity); a 0.8 width factor reflects the usual Wp/Wn compromise.
  std::shared_ptr<const devices::MosfetModel> pmos;
  if (spec.include_pullup) {
    pmos = std::shared_ptr<const devices::MosfetModel>(
        std::make_shared<devices::ScaledMosfetModel>(
            spec.tech.make_golden(spec.golden, spec.driver_width_mult),
            0.8));
  }

  bench.slope = vdd / spec.input_rise_time;
  bench.t_ramp_start = 0.0;
  bench.t_ramp_end = 0.0;

  const int total = spec.n_drivers + spec.n_quiet;
  for (int i = 0; i < total; ++i) {
    const std::string idx = std::to_string(i);
    const NodeId n_in = ckt.node("in" + idx);
    const NodeId n_out = ckt.node("out" + idx);
    bench.input_nodes.push_back("in" + idx);
    bench.output_nodes.push_back("out" + idx);

    const bool switching = i < spec.n_drivers;
    if (switching) {
      const double delay = spec.stagger.empty() ? 0.0 : spec.stagger[std::size_t(i)];
      ckt.add_vsource("Vin" + idx, n_in, gnd,
                      waveform::Ramp{0.0, vdd, delay, spec.input_rise_time});
      bench.t_ramp_end =
          std::max(bench.t_ramp_end, delay + spec.input_rise_time);
    } else {
      ckt.add_vsource("Vin" + idx, n_in, gnd, waveform::Dc{0.0});
    }

    ckt.add_mosfet("Mn" + idx, n_out, n_in, n_vssi, n_bulk, nmos,
                   MosfetPolarity::kNmos);
    if (spec.include_pullup) {
      ckt.add_mosfet("Mp" + idx, n_out, n_in, n_vdd, n_vdd, pmos,
                     MosfetPolarity::kPmos);
    }
    ckt.add_capacitor("Cl" + idx, n_out, gnd, cl);
    // DC anchor: keeps the output node's operating point defined even with
    // the pull-up omitted. 10 MOhm draws a negligible ~0.2 uA while still
    // overpowering any residual subthreshold leakage of the models.
    ckt.add_resistor("Ranchor" + idx, n_out, n_vdd, 1e7);
  }
  return bench;
}

}  // namespace ssnkit::circuit
