#include "verify/residual.hpp"

#include "support/diagnostics.hpp"

#include <cmath>
#include <cstddef>
#include <limits>
#include <vector>

namespace ssnkit::verify {

double scaled_residual(const numeric::StampedMatrix& a,
                       const numeric::Vector& x, const numeric::Vector& b) {
  const std::size_t n = a.size();
  if (n == 0 || x.size() != n || b.size() != n || !a.has_pattern())
    return std::nan("");
  const std::vector<std::size_t>& rp = a.row_ptr();
  const std::vector<std::size_t>& ci = a.col_idx();
  const std::vector<double>& vals = a.values();

  double r_inf = 0.0, a_inf = 0.0, x_inf = 0.0, b_inf = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    double ax = 0.0, row_abs = 0.0;
    for (std::size_t p = rp[i]; p < rp[i + 1]; ++p) {
      const double v = vals[p];
      ax += v * x[ci[p]];
      row_abs += std::fabs(v);
    }
    const double ri = ax - b[i];
    if (!std::isfinite(ri)) return std::numeric_limits<double>::infinity();
    r_inf = std::max(r_inf, std::fabs(ri));
    a_inf = std::max(a_inf, row_abs);
    b_inf = std::max(b_inf, std::fabs(b[i]));
    x_inf = std::max(x_inf, std::fabs(x[i]));
  }
  const double denom = a_inf * x_inf + b_inf;
  if (!std::isfinite(denom))
    return std::numeric_limits<double>::infinity();
  if (denom <= 0.0)  // zero system: any nonzero residual is infinitely wrong
    return r_inf > 0.0 ? std::numeric_limits<double>::infinity() : 0.0;
  return r_inf / denom;
}

double norm1(const numeric::StampedMatrix& a) {
  const std::size_t n = a.size();
  if (n == 0 || !a.has_pattern()) return 0.0;
  const std::vector<std::size_t>& rp = a.row_ptr();
  const std::vector<std::size_t>& ci = a.col_idx();
  const std::vector<double>& vals = a.values();
  std::vector<double> col_abs(n, 0.0);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t p = rp[i]; p < rp[i + 1]; ++p)
      col_abs[ci[p]] += std::fabs(vals[p]);
  double worst = 0.0;
  for (const double c : col_abs) worst = std::max(worst, c);
  return worst;
}

double condest_1norm(const numeric::StampedMatrix& a,
                     const numeric::SparseFactor& lu, int max_iterations) {
  const std::size_t n = a.size();
  if (n == 0 || lu.size() != n || lu.singular())
    return std::numeric_limits<double>::infinity();

  // Hager's algorithm: maximize ||A^-1 x||_1 over the unit 1-norm ball by
  // gradient ascent. y = A^-1 x gives the estimate; z = A^-T sign(y) is the
  // gradient, and jumping to the coordinate vector of its largest entry
  // either improves the bound or proves local optimality.
  numeric::Vector x(n, 1.0 / double(n));
  numeric::Vector y, xi(n), z;
  double est = 0.0;
  std::size_t last_j = std::size_t(-1);
  try {
    for (int it = 0; it < max_iterations; ++it) {
      lu.solve(x, y);
      double y1 = 0.0;
      for (std::size_t i = 0; i < n; ++i) {
        if (!std::isfinite(y[i]))
          return std::numeric_limits<double>::infinity();
        y1 += std::fabs(y[i]);
      }
      est = std::max(est, y1);
      for (std::size_t i = 0; i < n; ++i) xi[i] = y[i] < 0.0 ? -1.0 : 1.0;
      lu.solve_transpose(xi, z);
      std::size_t j = 0;
      double zj = 0.0, zx = 0.0;
      for (std::size_t i = 0; i < n; ++i) {
        if (!std::isfinite(z[i]))
          return std::numeric_limits<double>::infinity();
        zx += z[i] * x[i];  // subgradient value at the current probe point
        if (std::fabs(z[i]) > zj) {
          zj = std::fabs(z[i]);
          j = i;
        }
      }
      // Optimality test: no coordinate beats the current subgradient value,
      // or the ascent revisits the same coordinate (a 2-cycle).
      if (zj <= zx || j == last_j) break;
      last_j = j;
      x.fill(0.0);
      x[j] = 1.0;
    }
  } catch (const support::SolverError&) {
    // A singular factorization mid-estimate IS the answer.
    return std::numeric_limits<double>::infinity();
  }
  return norm1(a) * est;
}

}  // namespace ssnkit::verify
