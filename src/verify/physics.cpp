#include "verify/physics.hpp"

#include "core/lc_model.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace ssnkit::verify {

namespace {

std::string format_note(const char* code, const char* fmt, double a,
                        double b) {
  char buf[160];
  std::snprintf(buf, sizeof(buf), fmt, a, b);
  return std::string(code) + ": " + buf;
}

}  // namespace

PhysicsFindings check_ground_path(const core::SsnScenario& scenario,
                                  const waveform::Waveform& vssi,
                                  const waveform::Waveform& i_l,
                                  double v_max, double t_at_max,
                                  const PhysicsCheckOptions& opts) {
  PhysicsFindings out;
  const std::size_t n = std::min(vssi.size(), i_l.size());
  if (n < 3 || !std::isfinite(v_max) || !std::isfinite(t_at_max)) {
    // Nothing checkable: an empty or non-finite record is its own failure
    // mode and is reported by the solver path, not re-litigated here.
    return out;
  }

  // --- Invariant 1: inductor-branch energy bookkeeping -------------------
  // Running trapezoid of the injected power vssi * i_L against the energy
  // stored in L. The sweep tracks the worst instantaneous deficit relative
  // to the peak energy scale, so a single corrupted span is caught even if
  // the endpoints happen to balance again.
  const double l = scenario.inductance;
  const double i0 = i_l.value(0);
  double e_inj = 0.0;
  double e_scale = 0.0;
  double worst_deficit = 0.0;
  double e_stored = 0.0;
  for (std::size_t k = 1; k < n; ++k) {
    const double dt = vssi.time(k) - vssi.time(k - 1);
    const double p0 = vssi.value(k - 1) * i_l.value(k - 1);
    const double p1 = vssi.value(k) * i_l.value(k);
    e_inj += 0.5 * (p0 + p1) * dt;
    const double ik = i_l.value(k);
    e_stored = 0.5 * l * (ik * ik - i0 * i0);
    e_scale = std::max({e_scale, std::fabs(e_stored), std::fabs(e_inj)});
    worst_deficit = std::max(worst_deficit, e_stored - e_inj);
  }
  out.energy_injected = e_inj;
  out.energy_stored = e_stored;
  if (e_scale > 0.0) {
    out.worst_deficit = worst_deficit / e_scale;
    if (!std::isfinite(out.worst_deficit) ||
        out.worst_deficit > opts.energy_rel_tol) {
      out.passivity_ok = false;
      out.notes.push_back(format_note(
          "SSN-W073",
          "passivity violated: inductor stores %.3e J more than the chip "
          "injected (%.1f%% of the energy scale)",
          worst_deficit, 100.0 * out.worst_deficit));
    }
  } else if (!std::isfinite(e_inj) || !std::isfinite(e_stored)) {
    out.passivity_ok = false;
    out.notes.push_back(format_note(
        "SSN-W073", "passivity check hit non-finite energies (%.3e / %.3e)",
        e_inj, e_stored));
  }

  // --- Invariant 2a: v_max is the waveform's maximum ---------------------
  const waveform::Waveform::Extremum peak =
      vssi.maximum_in(scenario.t_on(), vssi.t_end());
  const double v_scale =
      std::max({std::fabs(peak.value), std::fabs(v_max), scenario.vdd});
  if (std::fabs(peak.value - v_max) > opts.vmax_rel_tol * v_scale) {
    out.extremum_ok = false;
    out.notes.push_back(format_note(
        "SSN-W073",
        "reported v_max %.6e V disagrees with the waveform maximum %.6e V",
        v_max, peak.value));
  }

  // --- Invariant 2b: extremum time matches the Table 1 damping case ------
  // Only for configurations the closed form covers (C > 0 so LcModel
  // applies, and the record reaches the predicted extremum).
  if (scenario.capacitance > 0.0 && out.extremum_ok) {
    const core::LcModel model(scenario);
    double t_expect = scenario.t_ramp_end();
    bool have_prediction = true;
    switch (model.max_case()) {
      case core::MaxSsnCase::kUnderDampedFirstPeak:
        t_expect = model.t_first_peak();
        break;
      case core::MaxSsnCase::kOverDamped:
      case core::MaxSsnCase::kCriticallyDamped:
      case core::MaxSsnCase::kUnderDampedBoundary:
        // Closed form says the ramp-window max sits at the ramp end; the
        // simulated peak may drift past t_r (the paper's own 3b caveat),
        // so only a peak well BEFORE the ramp end is inconsistent.
        have_prediction = false;
        break;
    }
    const double window =
        opts.peak_time_rel_tol *
        std::max(scenario.t_ramp_end() - scenario.t_on(), 1e-30);
    if (t_at_max <= vssi.t_end() - window) {  // extremum inside the record
      out.timing_checked = true;
      const bool bad = have_prediction
                           ? std::fabs(t_at_max - t_expect) > window
                           : t_at_max < t_expect - window;
      if (bad) {
        out.extremum_ok = false;
        out.notes.push_back(format_note(
            "SSN-W073",
            "v_max at t=%.3e s is inconsistent with the fitted damping "
            "case (expected near %.3e s)",
            t_at_max, t_expect));
      }
    }
  }
  return out;
}

bool cross_check_closed_form(double v_closed_form, double v_simulated,
                             TrustReport& trust, double bar) {
  if (!std::isfinite(v_closed_form) || !std::isfinite(v_simulated) ||
      std::fabs(v_closed_form) <= 0.0) {
    trust.downgrade(Verdict::kDegraded);
    trust.note(format_note("SSN-W074",
                           "closed-form cross-check impossible: model %.3e "
                           "V vs simulated %.3e V",
                           v_closed_form, v_simulated));
    return false;
  }
  const double rel =
      std::fabs(v_simulated - v_closed_form) / std::fabs(v_closed_form);
  if (rel > bar) {
    trust.downgrade(Verdict::kDegraded);
    trust.note(format_note(
        "SSN-W074",
        "closed form and simulator disagree by %.1f%% (bar %.1f%%)",
        100.0 * rel, 100.0 * bar));
    return false;
  }
  return true;
}

void apply(const PhysicsFindings& findings, TrustReport& trust) {
  if (!findings.ok()) trust.downgrade(Verdict::kDegraded);
  for (const std::string& n : findings.notes) trust.note(n);
}

}  // namespace ssnkit::verify
