// Physics invariants for the SSN ground path: checks that are independent
// of how the waveform was produced, so a corrupted simulation (bit-rotted
// cache entry, degraded factorization, broken device model) is caught by
// conservation laws rather than by trusting the producer.
//
//   1. Passivity / inductor-branch energy bookkeeping. The package ground
//      path contains no sources, so the energy the chip injects into it,
//      E_inj(t) = integral of vssi * i_L, must cover the energy stored in
//      the inductor, E_L(t) = L/2 * (i_L^2 - i_L(0)^2); the difference is
//      dissipation, which can never be negative. A waveform pair that
//      violates this is not a solution of any passive RLC network.
//   2. Extremum consistency against the fitted Table 1 damping case: the
//      reported V_max must actually be the waveform's maximum over the
//      ramp, and for an under-damped first-peak configuration its time
//      must sit near the closed-form first peak t_on + pi/omega_d
//      (otherwise near the ramp end, cases 1/2/3b).
//   3. Closed-form cross-check: the paper claims Eqn 7/13 track the
//      simulator within ~3 %; on cross-checkable configurations a larger
//      gap downgrades trust (SSN-W074) rather than crashing.
//
// Violations downgrade the TrustReport to degraded with an SSN-W073/W074
// note; they never throw — a suspect estimate still beats no estimate.
#pragma once

#include "core/scenario.hpp"
#include "verify/trust.hpp"
#include "waveform/waveform.hpp"

#include <string>
#include <vector>

namespace ssnkit::verify {

struct PhysicsCheckOptions {
  /// Allowed energy deficit relative to the peak stored energy. Covers
  /// trapezoid discretization error on LTE-controlled grids with margin.
  double energy_rel_tol = 0.05;
  /// Allowed |v_max - waveform maximum| relative to the waveform scale.
  double vmax_rel_tol = 1e-6;
  /// Allowed |t_at_max - predicted extremum| relative to the ramp length.
  /// Generous: the simulator's alpha-power devices are not the closed
  /// form's ASDM, so peaks shift — the check catches grossly inconsistent
  /// timing (a corrupted scalar), not modeling differences.
  double peak_time_rel_tol = 0.25;
};

/// What the invariant sweep found. `notes` carries ready-to-attach
/// SSN-W073 strings; apply() folds everything into a TrustReport.
struct PhysicsFindings {
  bool passivity_ok = true;
  bool extremum_ok = true;
  bool timing_checked = false;     ///< Table 1 timing check applied
  double energy_injected = 0.0;    ///< E_inj at end of record [J]
  double energy_stored = 0.0;      ///< inductor energy at end of record [J]
  double worst_deficit = 0.0;      ///< max_t (E_L - E_inj)/scale, >0 = bad
  std::vector<std::string> notes;
  bool ok() const { return passivity_ok && extremum_ok; }
};

/// Run invariants 1 and 2 on a simulated ground-bounce record. `vssi` and
/// `i_l` are the ground-node voltage and package-inductor current on the
/// simulator's time grid; `v_max`/`t_at_max` are the reported extremum.
PhysicsFindings check_ground_path(const core::SsnScenario& scenario,
                                  const waveform::Waveform& vssi,
                                  const waveform::Waveform& i_l,
                                  double v_max, double t_at_max,
                                  const PhysicsCheckOptions& opts = {});

/// Invariant 3: closed-form vs simulator agreement. Appends an SSN-W074
/// note and downgrades `trust` when the relative gap exceeds `bar`
/// (the paper's 3 % by default). Returns true when within the bar.
bool cross_check_closed_form(double v_closed_form, double v_simulated,
                             TrustReport& trust, double bar = 0.03);

/// Fold findings into a trust report: ok -> no change; a violated
/// invariant downgrades to degraded and attaches the SSN-W073 notes.
void apply(const PhysicsFindings& findings, TrustReport& trust);

}  // namespace ssnkit::verify
