// The trust layer's result passport. Every number that leaves the engine
// (a transient waveform, an SSN measurement, a Monte-Carlo statistic, a
// served response) carries a TrustReport stating how it was checked:
//
//   - verified:   the independent checks ran and all passed;
//   - refined:    a check failed, one step of iterative refinement (or an
//                 equivalent recovery) brought it back within tolerance;
//   - unverified: the checks did not run (verification disabled, analytic
//                 fallback, or a legacy producer) — honest "don't know";
//   - degraded:   a check failed and could not be recovered. The value is
//                 still returned (a degraded estimate beats no estimate)
//                 but it must never be presented as trustworthy.
//
// Verdicts only ever get worse as a result flows through the pipeline:
// downgrade()/merge() take the maximum severity, so a verified solve inside
// a degraded measurement reports degraded. The companion SSN-W07x codes in
// `notes` say *why* (docs/DIAGNOSTICS.md has the catalog).
#pragma once

#include <cmath>
#include <cstddef>
#include <string>
#include <vector>

namespace ssnkit::verify {

/// How a result was checked. Order is not severity; use verdict_rank().
enum class Verdict {
  kVerified,    ///< independent checks ran and passed
  kRefined,     ///< a check failed, refinement recovered it
  kUnverified,  ///< checks did not run
  kDegraded,    ///< a check failed and stayed failed
};

const char* to_string(Verdict v);

/// Parse the wire name ("verified", ...) back to a Verdict; returns false
/// on an unknown name. Used when replaying cached/serialized verdicts.
bool verdict_from_name(const std::string& name, Verdict& out);

/// Severity for merging: verified(0) < refined(1) < unverified(2) <
/// degraded(3). Unverified outranks refined because a refined number was
/// at least re-checked; an unverified one carries no evidence at all.
int verdict_rank(Verdict v);

/// The more severe of two verdicts under verdict_rank().
Verdict worse(Verdict a, Verdict b);

/// Compact, copyable verification summary attached to results.
struct TrustReport {
  Verdict verdict = Verdict::kUnverified;
  /// Worst scaled linear-solve residual ||Ax-b||inf/(||A||inf*||x||inf +
  /// ||b||inf) observed while producing the result; NaN = no solve checked.
  double residual = std::nan("");
  /// Hager 1-norm condition estimate of the last factorized system;
  /// NaN = not estimated.
  double cond_estimate = std::nan("");
  /// Iterative-refinement steps spent recovering solves.
  std::size_t refinements = 0;
  /// Monte-Carlo 95 % confidence-interval half-width on the headline
  /// statistic; NaN = not a sampled result.
  double ci95 = std::nan("");
  /// SSN-W07x codes with human-readable detail, one per triggered check.
  std::vector<std::string> notes;

  /// Worsen the verdict (never improves it).
  void downgrade(Verdict v) { verdict = worse(verdict, v); }

  /// Append a note, skipping exact duplicates (checks can re-fire across
  /// recovery retries of the same sample).
  void note(const std::string& text);

  /// Fold a sub-result's report into this one: worst verdict, worst
  /// residual/condition, summed refinements, concatenated notes.
  void merge(const TrustReport& other);

  /// One-line render for CLI tables and logs, e.g.
  /// "verified (residual 3.1e-15, cond 2.4e+03)".
  std::string summary() const;
};

}  // namespace ssnkit::verify
