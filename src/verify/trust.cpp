#include "verify/trust.hpp"

#include <algorithm>
#include <cstdio>

namespace ssnkit::verify {

const char* to_string(Verdict v) {
  switch (v) {
    case Verdict::kVerified: return "verified";
    case Verdict::kRefined: return "refined";
    case Verdict::kUnverified: return "unverified";
    case Verdict::kDegraded: return "degraded";
  }
  return "unknown";
}

bool verdict_from_name(const std::string& name, Verdict& out) {
  for (const Verdict v : {Verdict::kVerified, Verdict::kRefined,
                          Verdict::kUnverified, Verdict::kDegraded}) {
    if (name == to_string(v)) {
      out = v;
      return true;
    }
  }
  return false;
}

int verdict_rank(Verdict v) {
  switch (v) {
    case Verdict::kVerified: return 0;
    case Verdict::kRefined: return 1;
    case Verdict::kUnverified: return 2;
    case Verdict::kDegraded: return 3;
  }
  return 3;
}

Verdict worse(Verdict a, Verdict b) {
  return verdict_rank(a) >= verdict_rank(b) ? a : b;
}

void TrustReport::note(const std::string& text) {
  if (std::find(notes.begin(), notes.end(), text) != notes.end()) return;
  notes.push_back(text);
}

void TrustReport::merge(const TrustReport& other) {
  verdict = worse(verdict, other.verdict);
  // Worst residual/condition wins; NaN means "not measured" and loses to
  // any measured value.
  if (!std::isfinite(residual) ||
      (std::isfinite(other.residual) && other.residual > residual))
    residual = other.residual;
  if (!std::isfinite(cond_estimate) ||
      (std::isfinite(other.cond_estimate) &&
       other.cond_estimate > cond_estimate))
    cond_estimate = other.cond_estimate;
  refinements += other.refinements;
  if (!std::isfinite(ci95) ||
      (std::isfinite(other.ci95) && other.ci95 > ci95))
    ci95 = other.ci95;
  for (const std::string& n : other.notes) note(n);
}

std::string TrustReport::summary() const {
  std::string s = to_string(verdict);
  std::string detail;
  char buf[64];
  const auto append = [&](const char* label, double v) {
    std::snprintf(buf, sizeof(buf), "%s %.2e", label, v);
    if (!detail.empty()) detail += ", ";
    detail += buf;
  };
  if (std::isfinite(residual)) append("residual", residual);
  if (std::isfinite(cond_estimate)) append("cond", cond_estimate);
  if (refinements > 0) {
    std::snprintf(buf, sizeof(buf), "refined x%zu", refinements);
    if (!detail.empty()) detail += ", ";
    detail += buf;
  }
  if (std::isfinite(ci95)) append("ci95 +/-", ci95);
  if (!detail.empty()) s += " (" + detail + ")";
  for (const std::string& n : notes) {
    s += "; ";
    s += n;
  }
  return s;
}

}  // namespace ssnkit::verify
