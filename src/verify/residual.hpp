// Linear-solve verification: the scaled residual check that runs on the
// transient hot path and the Hager 1-norm condition estimator that runs
// once per factorization epoch.
//
// The residual check is the core of the "never silently wrong" guarantee:
// a backward-stable LU solve of a well-conditioned MNA system leaves
// ||Ax-b||inf / (||A||inf*||x||inf + ||b||inf) within a small multiple of
// machine epsilon (~1e-14). A corrupted factor (bit rot, a fault-injected
// flip), a stale refactorization, or a genuinely near-singular system
// pushes it orders of magnitude higher — cheap to detect with one extra
// CSR sweep that reuses the already-stamped matrix, allocating nothing.
#pragma once

#include "numeric/matrix.hpp"
#include "numeric/sparse.hpp"

namespace ssnkit::verify {

/// Scaled residual ||Ax-b||inf / (||A||inf*||x||inf + ||b||inf) of a
/// linear solve, computed in one fused sweep over the CSR arrays with no
/// allocation (hot-path safe). Returns +inf when the residual is
/// non-finite (a NaN must read as "maximally wrong", not be swallowed by
/// a max() against it), and NaN when the shapes do not line up.
double scaled_residual(const numeric::StampedMatrix& a,
                       const numeric::Vector& x, const numeric::Vector& b);

/// ||A||_1 (maximum absolute column sum). Allocates a column accumulator;
/// off the hot path.
double norm1(const numeric::StampedMatrix& a);

/// Hager's 1-norm condition estimate ||A||_1 * est(||A^-1||_1): a few
/// rounds of A / A^T solves steered by sign vectors converge on a lower
/// bound of ||A^-1||_1 that is almost always within a small factor of the
/// truth. Runs once per factorization epoch (never per accepted step);
/// the factors must be current for `a`. Returns +inf when a solve fails.
double condest_1norm(const numeric::StampedMatrix& a,
                     const numeric::SparseFactor& lu, int max_iterations = 5);

}  // namespace ssnkit::verify
