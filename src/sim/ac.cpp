#include "sim/ac.hpp"

#include "support/contracts.hpp"
#include "support/diagnostics.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace ssnkit::sim {

using circuit::AcStampContext;
using circuit::Circuit;
using numeric::CMatrix;
using numeric::Complex;
using numeric::CVector;

AcResult::AcResult(std::vector<std::string> signal_names,
                   std::vector<double> freqs)
    : names_(std::move(signal_names)),
      freqs_(std::move(freqs)),
      columns_(names_.size(), std::vector<Complex>(freqs_.size())) {}

void AcResult::set_point(std::size_t f_index, const CVector& x) {
  SSN_REQUIRE(x.size() == names_.size(), "AcResult::set_point: size mismatch");
  for (std::size_t s = 0; s < names_.size(); ++s) columns_[s][f_index] = x[s];
}

std::size_t AcResult::index_of(const std::string& name) const {
  for (std::size_t i = 0; i < names_.size(); ++i)
    if (names_[i] == name) return i;
  throw std::out_of_range("AcResult: unknown signal '" + name + "'");
}

Complex AcResult::value(const std::string& name, std::size_t i) const {
  return columns_[index_of(name)][i];
}

std::vector<double> AcResult::magnitude(const std::string& name) const {
  const auto& col = columns_[index_of(name)];
  std::vector<double> out(col.size());
  for (std::size_t i = 0; i < col.size(); ++i) out[i] = std::abs(col[i]);
  return out;
}

std::vector<double> AcResult::magnitude_db(const std::string& name) const {
  auto mags = magnitude(name);
  for (double& m : mags) m = 20.0 * std::log10(std::max(m, 1e-300));
  return mags;
}

std::vector<double> AcResult::phase_deg(const std::string& name) const {
  const auto& col = columns_[index_of(name)];
  std::vector<double> out(col.size());
  for (std::size_t i = 0; i < col.size(); ++i)
    out[i] = std::arg(col[i]) * 180.0 / std::numbers::pi;
  return out;
}

AcResult::Peak AcResult::peak(const std::string& name) const {
  const auto mags = magnitude(name);
  std::size_t best = 0;
  for (std::size_t i = 1; i < mags.size(); ++i)
    if (mags[i] > mags[best]) best = i;
  return {freqs_[best], mags[best]};
}

namespace {

std::vector<std::string> collect_signal_names(const Circuit& ckt) {
  std::vector<std::string> names;
  for (int n = 1; n < ckt.node_count(); ++n) names.push_back(ckt.node_name(n));
  for (const auto& el : ckt.elements())
    for (int k = 0; k < el->branch_count(); ++k)
      names.push_back(k == 0 ? "I(" + el->name() + ")"
                             : "I(" + el->name() + "#" + std::to_string(k + 1) +
                                   ")");
  return names;
}

}  // namespace

AcResult run_ac(Circuit& ckt, const AcOptions& opts) {
  SSN_REQUIRE(opts.f_start > 0.0 && opts.f_stop > opts.f_start,
              "run_ac: need 0 < f_start < f_stop");
  SSN_REQUIRE(opts.points_per_decade >= 1,
              "run_ac: points_per_decade must be >= 1");

  ckt.finalize();
  const std::size_t n = std::size_t(ckt.unknown_count());
  const int n_nodes = ckt.node_count();

  const DcResult dc = dc_operating_point(ckt, 0.0, opts.newton);

  // Log frequency grid (inclusive of both endpoints).
  std::vector<double> freqs;
  const double decades = std::log10(opts.f_stop / opts.f_start);
  const int total = std::max(2, int(std::ceil(decades * opts.points_per_decade)) + 1);
  for (int i = 0; i < total; ++i)
    freqs.push_back(opts.f_start *
                    std::pow(10.0, decades * double(i) / double(total - 1)));

  AcResult result(collect_signal_names(ckt), std::move(freqs));

  CMatrix a(n, n);
  CVector b(n);
  for (std::size_t fi = 0; fi < result.point_count(); ++fi) {
    a.fill({});
    b.fill({});
    AcStampContext ctx;
    ctx.omega = 2.0 * std::numbers::pi * result.frequencies()[fi];
    ctx.x_op = &dc.solution;
    ctx.a = &a;
    ctx.b = &b;
    for (const auto& el : ckt.elements()) el->stamp_ac(ctx);
    numeric::CLuFactorization lu(a);
    if (lu.singular()) {
      support::SolverDiagnostics diag;
      diag.where = "run_ac";
      throw support::SolverError(
          support::SolverErrorKind::kSingularMatrix,
          "singular AC matrix at f=" +
              std::to_string(result.frequencies()[fi]),
          std::move(diag));
    }
    const CVector x = lu.solve(b);

    // Reorder into the signal layout (voltages then branch currents in
    // element order) — identical to the unknown layout here.
    CVector row(result.signal_names().size());
    for (int node = 1; node < n_nodes; ++node)
      row[std::size_t(node - 1)] = x[std::size_t(node - 1)];
    std::size_t out_idx = std::size_t(n_nodes - 1);
    for (const auto& el : ckt.elements())
      if (el->branch_count() > 0)
        for (int k = 0; k < el->branch_count(); ++k)
          row[out_idx++] =
              x[std::size_t(n_nodes - 1 + el->branch_index() + k)];
    result.set_point(fi, row);
  }
  return result;
}

}  // namespace ssnkit::sim
