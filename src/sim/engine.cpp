#include "sim/engine.hpp"

#include "numeric/sparse.hpp"
#include "support/contracts.hpp"
#include "support/faultinject.hpp"
#include "verify/residual.hpp"
#include "verify/trust.hpp"
#include "waveform/source_spec.hpp"

#include <algorithm>
#include <array>
#include <cassert>
#include <cmath>
#include <cstdio>
#include <utility>

namespace ssnkit::sim {

using circuit::AcceptContext;
using circuit::AnalysisMode;
using circuit::Circuit;
using circuit::Element;
using circuit::IntegrationCoeffs;
using circuit::Integrator;
using circuit::StampContext;
using numeric::Vector;
using support::FaultKind;
using support::HomotopyStage;
using support::SolverDiagnostics;
using support::SolverError;
using support::SolverErrorKind;

namespace {

/// Everything solve_newton needs across iterations and timesteps: the
/// fixed-pattern stamped Jacobian (the cached "stamp plan"), the reusable
/// RHS/update/residual vectors and the sparse factorization whose symbolic
/// analysis is reused via numeric-only refactorization. One workspace
/// serves one (circuit, analysis mode) pair; dc_operating_point and
/// run_transient each own one, so after the first assembly every Newton
/// iteration runs without heap allocation.
struct SolverWorkspace {
  numeric::StampedMatrix a;   ///< stamped Jacobian, pattern cached
  Vector b;                   ///< RHS
  Vector x_new;               ///< Newton update target
  Vector scratch;             ///< residual work vector
  Vector scratch2;            ///< second scratch for iterative refinement
  numeric::SparseFactor lu;   ///< symbolic analysis reused across iterations
  std::size_t pattern_rebuilds = 0;  ///< release-mode pattern drift repairs
  /// The last factor_jacobian call fell back to a re-pivoted full
  /// factorization because a reused pivot degraded — the near-singular
  /// regime where a solve deserves a refinement step.
  bool degraded_pivot_fallback = false;

  void ensure_sized(std::size_t n) {
    b.resize(n);
    x_new.resize(n);
    scratch.resize(n);
    scratch2.resize(n);
  }
};

/// Assemble the MNA system for one Newton iteration into the workspace.
/// The first call (or any call after a pattern reset) runs in discovery
/// mode and finalizes the sparsity pattern; later calls stamp values into
/// the cached pattern with zero allocation.
void assemble(Circuit& ckt, const StampContext& base, const Vector& x,
              SolverWorkspace& ws) {
  const std::size_t n = std::size_t(ckt.unknown_count());
  ws.ensure_sized(n);
  const bool discovery = !ws.a.has_pattern() || ws.a.size() != n;
  if (discovery)
    ws.a.begin_pattern(n);
  else
    ws.a.clear();
  ws.b.fill(0.0);

  StampContext ctx = base;
  ctx.x = &x;
  ctx.a = nullptr;
  ctx.sa = &ws.a;
  ctx.b = &ws.b;
  for (const auto& el : ckt.elements()) el->stamp(ctx);
  // Homotopy conductance from every node to ground. Stamped even when
  // gmin == 0 so the diagonal slots are part of the discovered pattern and
  // gmin stepping never changes the sparsity (no re-analysis mid-homotopy).
  for (int node = 1; node < ckt.node_count(); ++node)
    ws.a.add(std::size_t(node - 1), std::size_t(node - 1), ctx.gmin);
  if (discovery) {
    ws.a.finalize_pattern();
    return;
  }
  if (ws.a.missed() != 0) {
    // An element stamped a coordinate outside the cached pattern. Stamp
    // patterns are fixed per (circuit, mode), so this is a bug in an
    // element model; recover in release builds by rediscovering.
    assert(ws.a.missed() == 0 && "stamp pattern drifted from cached plan");
    ++ws.pattern_rebuilds;
    ws.a.reset_pattern();
    assemble(ckt, base, x, ws);
  }
}

/// KCL mismatch ||A*x - b||_inf of the linearized system assembled in the
/// workspace — the residual reported in diagnostics when a solve stalls.
double kcl_residual(SolverWorkspace& ws, const Vector& x) {
  ws.a.mul_into(x, ws.scratch);
  double worst = 0.0;
  for (std::size_t i = 0; i < ws.scratch.size(); ++i) {
    const double row = ws.scratch[i] - ws.b[i];
    if (std::isfinite(row)) worst = std::max(worst, std::fabs(row));
  }
  return worst;
}

struct NewtonOutcome {
  bool converged = false;
  std::size_t iterations = 0;
  bool singular = false;    ///< LU reported a singular system
  bool non_finite = false;  ///< NaN/Inf appeared in the Newton update
  bool injected = false;    ///< a fault-injection hook forced this failure
  double max_dv = 0.0;      ///< last iteration's largest voltage update
  double residual = 0.0;    ///< ||A*x - b||_inf at the failure point
  int worst_node = -1;      ///< node (NodeId) with the largest update
};

/// Factor the workspace Jacobian: numeric-only refactorization when the
/// symbolic analysis is still valid for this pattern epoch, full
/// factorization (which redoes the analysis and re-pivots) otherwise or
/// when a reused pivot degraded. Returns false on a singular system.
bool factor_jacobian(SolverWorkspace& ws) {
  ws.degraded_pivot_fallback = false;
  if (ws.lu.pattern_epoch() == ws.a.epoch() && !ws.lu.singular()) {
    if (ws.lu.refactorize(ws.a)) return true;
    // A reused pivot degraded badly against its column: the values drifted
    // toward singularity since the pivot order was chosen. Remember it so
    // the next solve gets an iterative-refinement step — re-pivoting
    // restores stability but the system itself is near-singular, where
    // even a fresh LU loses digits.
    ws.degraded_pivot_fallback = true;
  }
  return ws.lu.factorize(ws.a);
}

/// Newton–Raphson on the MNA equations; x holds the initial guess on entry
/// and the solution on (successful) exit.
NewtonOutcome solve_newton(Circuit& ckt, const StampContext& base, Vector& x,
                           const NewtonOptions& opts, SolverWorkspace& ws) {
  const int n_nodes = ckt.node_count();
  const std::size_t n = std::size_t(ckt.unknown_count());
  NewtonOutcome out;

  for (int it = 0; it < opts.max_iterations; ++it) {
    ++out.iterations;
    assemble(ckt, base, x, ws);
    if (SSN_FAULT_POINT(FaultKind::kNewtonDivergence)) {
      out.injected = true;
      out.residual = kcl_residual(ws, x);
      return out;
    }
    const bool forced_singular = SSN_FAULT_POINT(FaultKind::kSingularLu);
    if (!factor_jacobian(ws) || forced_singular) {
      out.singular = true;
      out.injected = forced_singular;
      out.residual = kcl_residual(ws, x);
      return out;
    }
    ws.lu.solve(ws.b, ws.x_new);
    if (ws.degraded_pivot_fallback)
      ws.lu.refine(ws.a, ws.b, ws.x_new, ws.scratch, ws.scratch2);
    Vector& x_new = ws.x_new;
    const bool forced_nan = SSN_FAULT_POINT(FaultKind::kNanResidual);
    if (forced_nan && n > 0) x_new[0] = std::nan("");
    if (!ssnkit::detail::contract_all_finite(x_new)) {
      // A device model returning NaN conductances (or an injected fault)
      // corrupted the update: report it as a typed failure instead of
      // letting the NaN masquerade as a converged point downstream.
      out.non_finite = true;
      out.injected = forced_nan;
      out.residual = kcl_residual(ws, x);
      return out;
    }

    // Damping: limit the largest voltage move per iteration so the device
    // exponentials/power laws are never evaluated absurdly far out. Past
    // half the iteration budget, also halve every step — this breaks the
    // 2-cycles piecewise-linear devices can otherwise drive Newton into.
    double max_dv = 0.0;
    int worst = -1;
    for (int node = 1; node < n_nodes; ++node) {
      const double dv =
          std::fabs(x_new[std::size_t(node - 1)] - x[std::size_t(node - 1)]);
      if (dv > max_dv) {
        max_dv = dv;
        worst = node;
      }
    }
    out.max_dv = max_dv;
    out.worst_node = worst;
    double alpha = 1.0;
    if (max_dv > opts.max_voltage_step) alpha = opts.max_voltage_step / max_dv;
    if (it > opts.max_iterations / 2) alpha *= 0.5;
    if (alpha < 1.0)
      for (std::size_t i = 0; i < n; ++i)
        x_new[i] = x[i] + alpha * (x_new[i] - x[i]);

    bool converged = max_dv <= opts.max_voltage_step;  // full step taken
    if (converged) {
      for (std::size_t i = 0; i < n; ++i) {
        const bool is_voltage = i < std::size_t(n_nodes - 1);
        const double abstol = is_voltage ? opts.abstol_v : opts.abstol_i;
        const double tol =
            opts.reltol * std::max(std::fabs(x_new[i]), std::fabs(x[i])) + abstol;
        if (std::fabs(x_new[i] - x[i]) > tol) {
          converged = false;
          break;
        }
      }
    }
    // Swap rather than move: x gets the new iterate and the workspace keeps
    // the old buffer for the next solve (no per-iteration reallocation).
    std::swap(x, ws.x_new);
    if (converged) {
      // Convergence contract: the LU solves keep each iterate finite, but a
      // device model returning NaN conductances can still corrupt the final
      // state between solves — never report a non-finite solution as
      // converged.
      SSN_ASSERT_FINITE(x);
      out.converged = true;
      return out;
    }
  }
  // Out of iterations: reassemble at the final iterate so the diagnostic
  // carries the true KCL mismatch the iteration stalled at.
  assemble(ckt, base, x, ws);
  out.residual = kcl_residual(ws, x);
  return out;
}

/// Classify a failed Newton outcome for the SolverError taxonomy.
SolverErrorKind classify(const NewtonOutcome& nr) {
  if (nr.singular) return SolverErrorKind::kSingularMatrix;
  if (nr.non_finite) return SolverErrorKind::kNonFiniteValue;
  return SolverErrorKind::kNewtonDivergence;
}

/// Fill the location/residual diagnostics shared by every failure path.
void fill_newton_diag(SolverDiagnostics& diag, const Circuit& ckt,
                      const NewtonOutcome& nr) {
  diag.residual = nr.residual;
  diag.max_dv = nr.max_dv;
  diag.injected = nr.injected;
  if (nr.worst_node > 0) {
    diag.node = nr.worst_node;
    diag.node_name = ckt.node_name(nr.worst_node);
  }
}

/// Gear-2 (BDF2) coefficients for possibly unequal steps h1 = t_{n+1}-t_n,
/// h2 = t_n - t_{n-1}:  dx/dt ~= a0*x_{n+1} + a1*x_n + a2*x_{n-1}.
IntegrationCoeffs make_coeffs(Integrator method, double h1, double h2) {
  IntegrationCoeffs c;
  c.method = method;
  c.h = h1;
  switch (method) {
    case Integrator::kBackwardEuler:
      c.a0 = 1.0 / h1;
      c.a1 = -1.0 / h1;
      break;
    case Integrator::kTrapezoidal:
      c.a0 = 2.0 / h1;  // elements use the trap form with stored derivative
      c.a1 = -2.0 / h1;
      break;
    case Integrator::kGear2: {
      if (h2 > 0.0) {
        const double r = h1 / h2;
        c.a0 = (1.0 + 2.0 * r) / (h1 * (1.0 + r));
        c.a1 = -(1.0 + r) / h1 * 1.0;  // -(1+r)/h1
        c.a2 = r * r / (h1 * (1.0 + r));
      } else {  // no history yet: BE
        c.a0 = 1.0 / h1;
        c.a1 = -1.0 / h1;
      }
      break;
    }
  }
  return c;
}

std::vector<std::string> collect_signal_names(const Circuit& ckt) {
  std::vector<std::string> names;
  for (int n = 1; n < ckt.node_count(); ++n) names.push_back(ckt.node_name(n));
  for (const auto& el : ckt.elements())
    for (int k = 0; k < el->branch_count(); ++k)
      names.push_back(k == 0 ? "I(" + el->name() + ")"
                             : "I(" + el->name() + "#" + std::to_string(k + 1) +
                                   ")");
  return names;
}

/// Write the recorded-signal row for state x into `row` (reuses capacity).
void snapshot_into(const Circuit& ckt, const Vector& x,
                   std::vector<double>& row) {
  row.clear();
  for (int n = 1; n < ckt.node_count(); ++n) row.push_back(x[std::size_t(n - 1)]);
  for (const auto& el : ckt.elements())
    for (int k = 0; k < el->branch_count(); ++k)
      row.push_back(x[std::size_t(ckt.branch_unknown_index(*el) + k)]);
}

/// Ring of the last <= 4 accepted points for the predictor and the LTE
/// divided differences. Rotation swaps Vector buffers instead of erasing
/// from the front, so steady-state pushes never reallocate.
struct StepHistory {
  std::array<double, 4> t{};
  std::array<Vector, 4> x{};
  std::size_t count = 0;

  void reset(double t0, const Vector& x0) {
    t[0] = t0;
    x[0] = x0;  // copy-assign at equal size reuses the buffer
    count = 1;
  }
  void push(double tt, const Vector& xx) {
    if (count < 4) {
      t[count] = tt;
      x[count] = xx;
      ++count;
      return;
    }
    std::swap(x[0], x[1]);
    std::swap(x[1], x[2]);
    std::swap(x[2], x[3]);
    t[0] = t[1];
    t[1] = t[2];
    t[2] = t[3];
    t[3] = tt;
    x[3] = xx;
  }
};

std::vector<double> collect_breakpoints(const Circuit& ckt, double t0, double t1) {
  std::vector<double> bps;
  for (const auto& el : ckt.elements()) {
    const waveform::SourceSpec* spec = nullptr;
    if (const auto* v = dynamic_cast<const circuit::VoltageSource*>(el.get()))
      spec = &v->spec();
    else if (const auto* i = dynamic_cast<const circuit::CurrentSource*>(el.get()))
      spec = &i->spec();
    if (!spec) continue;
    for (double t : waveform::source_breakpoints(*spec, t0, t1)) bps.push_back(t);
  }
  std::sort(bps.begin(), bps.end());
  bps.erase(std::unique(bps.begin(), bps.end(),
                        [](double a, double b) { return std::fabs(a - b) < 1e-18; }),
            bps.end());
  return bps;
}

std::string format_scale(const char* prefix, double value) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%s%.0e", prefix, value);
  return std::string(buf);
}

}  // namespace

double DcResult::voltage(const Circuit& ckt, const std::string& node) const {
  const circuit::NodeId id = ckt.find_node(node);
  return id == circuit::kGround ? 0.0 : solution[std::size_t(id - 1)];
}

DcResult dc_operating_point(Circuit& ckt, double time, const NewtonOptions& newton) {
  ckt.finalize();
  const std::size_t n = std::size_t(ckt.unknown_count());
  DcResult out;
  out.solution = Vector(n);

  StampContext base;
  base.mode = AnalysisMode::kDc;
  base.time = time;

  // One workspace for every homotopy stage: gmin and source_scale only
  // change stamped values, never the sparsity pattern, so the symbolic
  // analysis from the first factorization carries through the whole ladder.
  SolverWorkspace ws;

  // Failure bookkeeping: the trail records every stage; the last failed
  // outcome classifies the error and locates the stall.
  NewtonOutcome last_fail;
  bool any_injected = false;
  const auto record = [&](std::string name, const NewtonOutcome& r) {
    HomotopyStage st;
    st.name = std::move(name);
    st.converged = r.converged;
    st.iterations = r.iterations;
    st.residual = r.residual;
    st.max_dv = r.max_dv;
    out.homotopy_trail.push_back(std::move(st));
    if (!r.converged) last_fail = r;
    if (r.injected) any_injected = true;
  };

  // 1. Plain Newton from zero.
  {
    Vector x(n);
    const auto r = solve_newton(ckt, base, x, newton, ws);
    out.iterations += r.iterations;
    record("plain-newton", r);
    if (r.converged) {
      out.solution = std::move(x);
      SSN_ASSERT_FINITE(out.solution);
      return out;
    }
  }
  // 2. gmin stepping.
  {
    out.used_gmin_stepping = true;
    Vector x(n);
    bool ok = true;
    for (double gmin = 1e-2; gmin >= 1e-12; gmin *= 1e-2) {
      StampContext ctx = base;
      ctx.gmin = gmin;
      const auto r = solve_newton(ckt, ctx, x, newton, ws);
      out.iterations += r.iterations;
      record(format_scale("gmin=", gmin), r);
      if (!r.converged) {
        ok = false;
        break;
      }
    }
    if (ok) {
      const auto r = solve_newton(ckt, base, x, newton, ws);
      out.iterations += r.iterations;
      record("gmin-final", r);
      if (r.converged) {
        out.solution = std::move(x);
        SSN_ASSERT_FINITE(out.solution);
        return out;
      }
    }
  }
  // 3. Source stepping.
  {
    out.used_source_stepping = true;
    Vector x(n);
    bool ok = true;
    for (double scale = 0.1; scale <= 1.0001; scale += 0.1) {
      StampContext ctx = base;
      ctx.source_scale = std::min(scale, 1.0);
      const auto r = solve_newton(ckt, ctx, x, newton, ws);
      out.iterations += r.iterations;
      record(format_scale("source=", std::min(scale, 1.0)), r);
      if (!r.converged) {
        ok = false;
        break;
      }
    }
    if (ok) {
      out.solution = std::move(x);
      SSN_ASSERT_FINITE(out.solution);
      return out;
    }
  }

  SolverDiagnostics diag;
  diag.where = "dc_operating_point";
  diag.time = time;
  diag.newton_iterations = out.iterations;
  fill_newton_diag(diag, ckt, last_fail);
  diag.injected = any_injected || last_fail.injected;
  diag.homotopy_trail = out.homotopy_trail;
  throw SolverError(
      classify(last_fail),
      "no convergence (plain, gmin and source stepping all failed)", diag);
}

TransientRun run_transient_ex(Circuit& ckt, const TransientOptions& opts) {
  SSN_REQUIRE(opts.t_stop > opts.t_start,
              "run_transient: t_stop must be > t_start");
  ckt.finalize();
  const std::size_t n = std::size_t(ckt.unknown_count());
  const int n_nodes = ckt.node_count();
  const double span = opts.t_stop - opts.t_start;

  const double h_max = opts.dt_max > 0.0 ? opts.dt_max : span / 50.0;
  const double h_min = opts.dt_min > 0.0 ? opts.dt_min : span * 1e-12;
  double h = opts.dt_initial > 0.0 ? opts.dt_initial : span / 1000.0;
  h = std::clamp(h, h_min, h_max);

  TransientRun run{TransientResult(collect_signal_names(ckt)), std::nullopt};
  TransientResult& result = run.result;
  // The verdict starts at verified and can only be downgraded: any failed
  // check, refinement or solver error worsens it on the way through.
  if (opts.verify.enabled)
    result.trust.verdict = verify::Verdict::kVerified;

  // Transient workspace: pattern discovery + symbolic analysis happen at the
  // first Newton iteration of the first step; every later iteration stamps
  // into the cached pattern and refactorizes numerically.
  SolverWorkspace ws;

  // Preallocate the result columns and the snapshot row so steady-state
  // stepping appends without reallocation. The estimate is the fixed-step
  // point count; adaptive runs that take more points just grow amortized.
  std::vector<double> snap_row;
  snap_row.reserve(n);
  {
    const double est = span / h + 8.0;
    const double cap = double(opts.max_steps) + 8.0;
    result.reserve(std::size_t(std::min(std::min(est, cap), 4.0e6)));
  }

  // Initial state: DC operating point or UIC.
  Vector x(n);
  if (opts.use_ic) {
    // Node voltages start at 0; elements pick up their declared ICs.
  } else {
    try {
      DcResult dc = dc_operating_point(ckt, opts.t_start, opts.newton);
      result.stats.dc_iterations = dc.iterations;
      result.stats.dc_used_gmin_stepping = dc.used_gmin_stepping;
      result.stats.dc_used_source_stepping = dc.used_source_stepping;
      x = std::move(dc.solution);
    } catch (const SolverError& e) {
      SolverDiagnostics diag = e.diagnostics();
      diag.where = "run_transient (initial operating point)";
      run.error.emplace(e.kind(), "initial operating point failed",
                        std::move(diag));
      return run;
    }
  }
  {
    AcceptContext actx;
    actx.x = &x;
    actx.node_count = n_nodes;
    for (const auto& el : ckt.elements()) el->init_state(actx);
    // Always start the integration with a backward-Euler step: a source may
    // have a derivative discontinuity at t_start (e.g. a ramp beginning at
    // 0), and trapezoidal derivative history from the DC point would then
    // ring without damping.
    for (const auto& el : ckt.elements()) el->reset_derivative_history();
  }

  double t = opts.t_start;
  snapshot_into(ckt, x, snap_row);
  result.append(t, snap_row);

  const std::vector<double> breakpoints =
      collect_breakpoints(ckt, opts.t_start, opts.t_stop);

  // Accepted history for predictor + LTE divided differences.
  StepHistory hist;
  hist.reset(t, x);

  // Persistent per-step vectors: copy-assignment at constant size reuses
  // their buffers, and accepting a step swaps x_cand with x.
  Vector x_guess(n);
  Vector x_cand(n);

  StampContext base;
  base.mode = AnalysisMode::kTransient;

  const auto fail = [&](SolverErrorKind kind, const std::string& message,
                        SolverDiagnostics diag) {
    diag.where = "run_transient";
    diag.newton_iterations = result.stats.newton_iterations;
    // A failed run's waveform is a partial prefix, not the requested
    // result: whatever per-step checks passed, the whole is not verified.
    result.trust.downgrade(verify::Verdict::kDegraded);
    run.error.emplace(kind, message, std::move(diag));
  };

  const double t_eps = span * 1e-12;
  while (t < opts.t_stop - t_eps) {
    // Cooperative lifecycle poll: a cancelled token or an expired deadline
    // winds the run down here, at an accepted-step boundary, so the partial
    // waveform in `result` is always a consistent high-fidelity prefix.
    if (opts.run_ctx != nullptr) {
      const support::StopReason stop = opts.run_ctx->stop_requested();
      if (stop != support::StopReason::kNone) {
        SolverDiagnostics diag;
        diag.time = t;
        const bool cancelled = stop == support::StopReason::kCancelled;
        fail(cancelled ? SolverErrorKind::kCancelled
                       : SolverErrorKind::kDeadlineExpired,
             cancelled ? "run cancelled" : "deadline expired",
             std::move(diag));
        return run;
      }
    }
    // Never step across a source breakpoint.
    double h_step = std::min({h, h_max, opts.t_stop - t});
    for (double bp : breakpoints) {
      if (bp > t + t_eps) {
        h_step = std::min(h_step, bp - t);
        break;
      }
    }
    const bool forced_underflow = SSN_FAULT_POINT(FaultKind::kStepUnderflow);
    if (h_step < h_min || forced_underflow) {
      SolverDiagnostics diag;
      diag.time = t;
      diag.injected = forced_underflow && h_step >= h_min;
      fail(SolverErrorKind::kStepUnderflow, "time step underflow",
           std::move(diag));
      return run;
    }

    const double h_prev =
        hist.count >= 2 ? hist.t[hist.count - 1] - hist.t[hist.count - 2] : 0.0;
    base.time = t + h_step;
    base.coeffs = make_coeffs(opts.method, h_step, h_prev);

    // Predictor: linear extrapolation of the last two accepted points.
    x_guess = x;
    if (hist.count >= 2 && h_prev > 0.0) {
      const Vector& x1 = hist.x[hist.count - 1];
      const Vector& x0 = hist.x[hist.count - 2];
      const double r = h_step / h_prev;
      for (std::size_t i = 0; i < n; ++i)
        x_guess[i] = x1[i] + r * (x1[i] - x0[i]);
    }

    x_cand = x_guess;
    const auto nr = solve_newton(ckt, base, x_cand, opts.newton, ws);
    result.stats.newton_iterations += nr.iterations;
    if (nr.non_finite) ++result.stats.nonfinite_rejections;
    if (!nr.converged) {
      ++result.stats.newton_failures;
      const double h_next = h_step * 0.25;
      if (h_next >= h_min) {
        h = h_next;
        continue;
      }
      // The step cannot shrink further. Optionally rescue the timepoint
      // with a gmin ramp (the transient analogue of DC gmin stepping)
      // before surfacing the failure.
      bool rescued = false;
      if (opts.newton_gmin_recovery) {
        Vector xg = x;
        bool ramp_ok = true;
        std::size_t rescue_iters = 0;
        for (double gmin = 1e-3; gmin >= 1e-12; gmin *= 1e-2) {
          StampContext ctx = base;
          ctx.gmin = gmin;
          const auto rg = solve_newton(ckt, ctx, xg, opts.newton, ws);
          rescue_iters += rg.iterations;
          if (!rg.converged) {
            ramp_ok = false;
            break;
          }
        }
        if (ramp_ok) {
          const auto rf = solve_newton(ckt, base, xg, opts.newton, ws);
          rescue_iters += rf.iterations;
          if (rf.converged) {
            x_cand = std::move(xg);
            rescued = true;
          }
        }
        result.stats.newton_iterations += rescue_iters;
        if (rescued) ++result.stats.gmin_rescues;
      }
      if (!rescued) {
        SolverDiagnostics diag;
        diag.time = base.time;
        fill_newton_diag(diag, ckt, nr);
        fail(classify(nr), "Newton failed at minimum step", std::move(diag));
        return run;
      }
    }

    // LTE control via divided differences over the last accepted points.
    // Only node voltages participate: branch currents through very large
    // resistances are rounding-noise-dominated, and noise divided by h^3
    // would drive the controller to absurdly small steps.
    double err = 0.0;
    const bool can_lte = opts.adaptive && hist.count >= 3;
    if (can_lte) {
      const std::size_t m = hist.count;
      const double t3 = base.time, t2 = hist.t[m - 1], t1 = hist.t[m - 2],
                   t0 = hist.t[m - 3];
      for (std::size_t i = 0; i < std::size_t(n_nodes - 1); ++i) {
        const double f3 = x_cand[i], f2 = hist.x[m - 1][i], f1 = hist.x[m - 2][i],
                     f0 = hist.x[m - 3][i];
        double lte;
        if (opts.method == Integrator::kBackwardEuler) {
          // LTE ~ h^2/2 * x''; x''/2 ~ f[t3,t2,t1]
          const double dd2 =
              ((f3 - f2) / (t3 - t2) - (f2 - f1) / (t2 - t1)) / (t3 - t1);
          lte = h_step * h_step * std::fabs(dd2);
        } else {
          // LTE ~ c*h^3 * x'''; x'''/6 ~ f[t3,t2,t1,t0]
          const double dd2a =
              ((f3 - f2) / (t3 - t2) - (f2 - f1) / (t2 - t1)) / (t3 - t1);
          const double dd2b =
              ((f2 - f1) / (t2 - t1) - (f1 - f0) / (t1 - t0)) / (t2 - t0);
          const double dd3 = (dd2a - dd2b) / (t3 - t0);
          lte = 0.5 * h_step * h_step * h_step * std::fabs(dd3) * 6.0;
        }
        const double scale =
            opts.lte_abstol_v + opts.lte_reltol * std::fabs(x_cand[i]);
        err = std::max(err, lte / scale);
      }
      if (err > 1.0 && h_step > 4.0 * h_min) {
        ++result.stats.rejected_steps;
        const double shrink =
            std::clamp(0.9 * std::pow(std::max(err, 1e-12), -1.0 / 3.0), 0.1, 0.5);
        h = h_step * shrink;
        continue;
      }
    }

    // Accept.
    if (result.stats.accepted_steps >= opts.max_steps) {
      SolverDiagnostics diag;
      diag.time = t;
      fail(SolverErrorKind::kStepBudgetExhausted, "step budget exhausted",
           std::move(diag));
      return run;
    }

    // Trust layer: verify the accepted point's linear solve against the
    // still-stamped system (one CSR sweep over ws.a/ws.b, no allocation).
    // A clean solve sits near machine epsilon; a corrupted or stale
    // factorization lands orders of magnitude higher, gets one shot at
    // iterative refinement, and otherwise fails typed — never silent.
    if (opts.verify.enabled) {
      double res = verify::scaled_residual(ws.a, x_cand, ws.b);
      ++result.stats.residual_checks;
      if (!(res <= opts.verify.residual_tol)) {
        ws.lu.refine(ws.a, ws.b, x_cand, ws.scratch, ws.scratch2);
        ++result.stats.residual_refinements;
        ++result.trust.refinements;
        const double before = res;
        res = verify::scaled_residual(ws.a, x_cand, ws.b);
        if (!(res <= opts.verify.degrade_tol)) {
          result.trust.downgrade(verify::Verdict::kDegraded);
          result.trust.note(format_scale(
              "SSN-W071: scaled solve residual stayed at ", res));
          result.stats.worst_scaled_residual =
              std::max(result.stats.worst_scaled_residual, res);
          result.trust.residual = result.stats.worst_scaled_residual;
          SolverDiagnostics diag;
          diag.time = base.time;
          diag.residual = res;
          fail(SolverErrorKind::kResidualDegraded,
               "scaled solve residual " + format_scale("", before) +
                   " stayed at " + format_scale("", res) +
                   " after refinement",
               std::move(diag));
          return run;
        }
        result.trust.downgrade(verify::Verdict::kRefined);
        result.trust.note(
            format_scale("SSN-W070: solve residual ", before) +
            format_scale(" recovered to ", res) + " by refinement");
      }
      result.stats.worst_scaled_residual =
          std::max(result.stats.worst_scaled_residual, res);
    }

    t = base.time;
    std::swap(x, x_cand);  // keep x_cand's buffer alive for the next step
    {
      AcceptContext actx;
      actx.x = &x;
      actx.coeffs = base.coeffs;
      actx.node_count = n_nodes;
      for (const auto& el : ckt.elements()) el->accept_step(actx);
    }
    ++result.stats.accepted_steps;
    snapshot_into(ckt, x, snap_row);
    result.append(t, snap_row);
    hist.push(t, x);

    // Landed on a breakpoint: restart the integrator history (the source
    // derivative is discontinuous there).
    for (double bp : breakpoints) {
      if (std::fabs(bp - t) <= t_eps) {
        for (const auto& el : ckt.elements()) el->reset_derivative_history();
        hist.reset(t, x);
        break;
      }
    }

    // Step-size update.
    if (opts.adaptive) {
      double grow = 1.5;
      if (can_lte && err > 1e-12)
        grow = std::clamp(0.9 * std::pow(err, -1.0 / 3.0), 0.5, 2.0);
      h = std::clamp(h_step * grow, h_min, h_max);
    } else {
      // Fixed-step mode: return to the nominal step (a breakpoint may have
      // truncated this one).
      h = opts.dt_initial > 0.0 ? opts.dt_initial : span / 1000.0;
    }
  }

  // Once per run (never per step): the Hager 1-norm condition estimate of
  // the final factorized system. A quietly ill-conditioned package matrix
  // can pass every residual check yet carry a forward error far beyond the
  // paper's 3 % bar — that is a trust downgrade, not a solver failure.
  if (opts.verify.enabled) {
    if (ws.a.has_pattern() && !ws.lu.singular() &&
        ws.lu.pattern_epoch() == ws.a.epoch()) {
      const double cond = verify::condest_1norm(ws.a, ws.lu);
      result.stats.condition_estimate = cond;
      result.trust.cond_estimate = cond;
      if (!(cond <= opts.verify.cond_limit)) {
        result.trust.downgrade(verify::Verdict::kDegraded);
        result.trust.note(
            format_scale("SSN-W071: condition estimate ", cond) +
            format_scale(" exceeds the trust limit ", opts.verify.cond_limit));
      }
    }
    if (result.stats.residual_checks > 0)
      result.trust.residual = result.stats.worst_scaled_residual;
  }
  return run;
}

TransientResult run_transient(Circuit& ckt, const TransientOptions& opts) {
  SSN_REQUIRE(opts.t_stop > opts.t_start,
              "run_transient: t_stop must be > t_start");
  TransientRun run = run_transient_ex(ckt, opts);
  if (run.error) throw *run.error;
  return std::move(run.result);
}

}  // namespace ssnkit::sim
