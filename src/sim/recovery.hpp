// The solver recovery ladder: on transient failure, escalate through a
// deterministic sequence of cheaper-fidelity retries instead of aborting.
//
// Rungs, in order (each keeps the previous rungs' adjustments — the ladder
// is cumulative and therefore fully deterministic):
//
//   0  full-device         the caller's options, unchanged
//   1  tighten-damping     smaller max_voltage_step, doubled iteration budget
//   2  alternate-integrator trap -> Gear-2 (or Gear-2 -> BE): damped methods
//                          kill the trapezoidal ringing that grinds Newton
//   3  gmin-recovery       per-timepoint gmin ramp at the failing point
//   4  reduced-timestep    restart from t_start with dt_max shrunk 10x (the
//                          engine re-initializes element state, so t_start
//                          is the only safe checkpoint)
//
// A final analytic rung — degrade to the paper's closed-form LC / L-only
// models — lives in analysis/resilience.hpp, where the SsnScenario needed
// to evaluate the closed forms is known. The outcome is tagged with the
// fidelity level actually achieved, and the partial high-fidelity waveform
// from the first (unmodified) attempt is preserved for inspection.
#pragma once

#include "sim/engine.hpp"
#include "support/diagnostics.hpp"

#include <optional>
#include <string>
#include <vector>

namespace ssnkit::sim {

/// How much solver fidelity the returned waveform carries. Order matters:
/// larger values mean further degradation from the requested simulation.
enum class Fidelity {
  kFullDevice = 0,        ///< nominal device-level simulation succeeded
  kTightenedDamping = 1,  ///< succeeded with tighter Newton damping
  kAlternateIntegrator = 2,  ///< succeeded after switching integrator
  kGminRecovery = 3,      ///< succeeded with per-timepoint gmin rescue
  kReducedTimestep = 4,   ///< succeeded after a dt_max-shrunk restart
  kAnalytic = 5,          ///< degraded to the closed-form LC / L-only model
  kFailed = 6,            ///< everything failed; error is populated
};

const char* to_string(Fidelity fidelity);

/// Which rungs the ladder may climb and how aggressively. The defaults
/// implement the full ladder; disable rungs to bound retry cost.
struct RecoveryPolicy {
  bool enabled = true;
  bool try_tighten_damping = true;
  bool try_alternate_integrator = true;
  bool try_gmin_recovery = true;
  bool try_reduced_timestep = true;
  double damping_factor = 0.25;    ///< max_voltage_step multiplier on rung 1
  int iteration_boost = 2;         ///< max_iterations multiplier on rung 1
  /// Integrator for rung 2 when the caller asked for trapezoidal; a caller
  /// already on Gear-2 falls back to backward Euler instead.
  circuit::Integrator fallback_integrator = circuit::Integrator::kGear2;
  double dt_max_shrink = 0.1;      ///< dt_max multiplier on rung 4
};

/// Result of a laddered transient run.
struct RecoveryOutcome {
  TransientResult result;           ///< from the rung that succeeded
  Fidelity fidelity = Fidelity::kFullDevice;
  /// Engaged when every rung failed; carries the final rung's diagnostics
  /// plus the full recovery trail.
  std::optional<support::SolverError> error;
  /// Every rung attempted, in order, with its outcome.
  std::vector<support::RecoveryAttempt> attempts;
  /// The partial high-fidelity waveform the first (unmodified) attempt
  /// computed before failing — empty when the first attempt succeeded or
  /// failed before its first accepted point.
  TransientResult partial_full_fidelity;

  bool ok() const { return !error.has_value(); }
  bool degraded() const { return fidelity != Fidelity::kFullDevice; }
};

/// Run a transient analysis, escalating through the recovery ladder on
/// failure. Never throws on solver failure: a fully failed ladder returns
/// an outcome with fidelity kFailed and the typed error.
RecoveryOutcome run_transient_resilient(circuit::Circuit& ckt,
                                        const TransientOptions& opts,
                                        const RecoveryPolicy& policy = {});

}  // namespace ssnkit::sim
