// The nonlinear solvers: DC operating point (Newton with gmin- and
// source-stepping homotopies) and the transient engine (companion-model
// integration with trapezoidal / BE / Gear-2, Newton at every time point,
// LTE-based adaptive step control and breakpoint handling).
//
// This engine is the repository's stand-in for the paper's HSPICE runs;
// tests/test_sim_*.cpp validate it against closed-form RLC responses and
// RK45 reference integrations before it is trusted as a golden reference.
//
// Hot path: the Jacobian is stamped directly into a fixed-pattern sparse
// workspace (the pattern is discovered once per circuit/analysis mode) and
// factored with a symbolic-analysis-reusing sparse LU, so Newton iterations
// and timesteps run without per-iteration heap allocation. See
// docs/PERFORMANCE.md.
//
// Failure reporting: every solver failure surfaces as a typed
// support::SolverError (see support/diagnostics.hpp) carrying the failure
// kind, location and the homotopy/recovery trail. run_transient_ex() is the
// non-throwing variant batch drivers use: it returns the partial waveform
// computed before the failure instead of discarding it.
#pragma once

#include "circuit/circuit.hpp"
#include "sim/result.hpp"
#include "support/diagnostics.hpp"
#include "support/runcontext.hpp"

#include <optional>

namespace ssnkit::sim {

struct NewtonOptions {
  int max_iterations = 100;
  double reltol = 1e-6;
  double abstol_v = 1e-9;   ///< volts
  double abstol_i = 1e-12;  ///< amperes (branch unknowns)
  double max_voltage_step = 2.0;  ///< per-iteration damping limit [V]
};

/// Solve-verification policy (the src/verify trust layer). The scaled
/// residual ||Ax-b||inf/(||A||inf*||x||inf + ||b||inf) of the converged
/// linear system is checked once per *accepted* step — one extra CSR sweep
/// reusing the already-stamped matrix, no allocation — and the Hager
/// 1-norm condition estimate runs once per run, so the hot-path overhead
/// stays within the bench_perf 5 % budget.
struct VerifyOptions {
  bool enabled = true;
  /// Scaled residual above this triggers one step of iterative refinement
  /// (a backward-stable solve of a sane system sits near 1e-14).
  double residual_tol = 1e-9;
  /// Post-refinement residual above this fails the run with a typed
  /// SolverErrorKind::kResidualDegraded (SSN-W071) instead of returning
  /// the vector as-is; the recovery ladder's retry re-factorizes.
  double degrade_tol = 1e-7;
  /// Condition estimate above this downgrades trust to degraded
  /// (forward error ~ cond * eps can no longer support the paper's 3 %
  /// accuracy claim) without failing the run.
  double cond_limit = 1e14;
};

struct DcResult {
  numeric::Vector solution;
  std::size_t iterations = 0;
  bool used_gmin_stepping = false;
  bool used_source_stepping = false;
  /// Every homotopy stage that ran (plain Newton, each gmin value, each
  /// source scale) with its convergence status and final residual.
  std::vector<support::HomotopyStage> homotopy_trail;

  /// Voltage of a named node in this solution.
  double voltage(const circuit::Circuit& ckt, const std::string& node) const;
};

/// Solve the DC operating point (capacitors open, inductors shorted,
/// sources evaluated at `time`). Throws support::SolverError (a
/// std::runtime_error) carrying the homotopy trail when all homotopies fail.
DcResult dc_operating_point(circuit::Circuit& ckt, double time = 0.0,
                            const NewtonOptions& newton = {});

struct TransientOptions {
  double t_start = 0.0;
  double t_stop = 1e-9;
  circuit::Integrator method = circuit::Integrator::kTrapezoidal;
  double dt_initial = 0.0;  ///< 0 = auto (span/1000)
  double dt_min = 0.0;      ///< 0 = auto (span*1e-12)
  double dt_max = 0.0;      ///< 0 = auto (span/50)
  bool adaptive = true;     ///< LTE step control
  double lte_reltol = 1e-4;
  double lte_abstol_v = 1e-6;  ///< LTE runs on node voltages only
  /// Hard cap on accepted steps: converts pathological step-size grinding
  /// into an error instead of an unbounded run.
  std::size_t max_steps = 5'000'000;
  /// Skip the DC solve and start from element initial conditions
  /// (SPICE "UIC"); unknown node voltages start at 0.
  bool use_ic = false;
  /// Last-ditch per-timepoint rescue: when Newton still fails at the
  /// minimum step, retry the point with a gmin ramp (1e-3 -> 0) before
  /// giving up. Off by default; the RecoveryPolicy ladder enables it on
  /// its gmin rung.
  bool newton_gmin_recovery = false;
  /// Optional job lifecycle context. When set, the accepted-step loop polls
  /// it and winds down with a typed kCancelled / kDeadlineExpired error —
  /// the partial waveform up to the stop is preserved, exactly like any
  /// other solver failure surfaced through run_transient_ex. Not owned.
  const support::RunContext* run_ctx = nullptr;
  NewtonOptions newton;
  /// Trust-layer checks (on by default; see VerifyOptions).
  VerifyOptions verify;
};

/// Outcome of a transient run that never throws on solver failure: the
/// result holds every accepted point up to the failure (the high-fidelity
/// prefix), and `error` is engaged with the typed diagnostic.
struct TransientRun {
  TransientResult result;
  std::optional<support::SolverError> error;
  bool ok() const { return !error.has_value(); }
};

/// Run a transient analysis without throwing on solver failure; the partial
/// waveform computed before the failure is preserved in `result`.
TransientRun run_transient_ex(circuit::Circuit& ckt,
                              const TransientOptions& opts);

/// Run a transient analysis. Records every node voltage plus the branch
/// current of every voltage-defined element as "I(name)". Throws
/// support::SolverError on solver failure (the partial waveform is
/// discarded; use run_transient_ex to keep it).
TransientResult run_transient(circuit::Circuit& ckt, const TransientOptions& opts);

}  // namespace ssnkit::sim
