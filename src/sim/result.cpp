#include "sim/result.hpp"

#include "support/contracts.hpp"

#include <stdexcept>

namespace ssnkit::sim {

TransientResult::TransientResult(std::vector<std::string> signal_names)
    : names_(std::move(signal_names)), columns_(names_.size()) {}

void TransientResult::append(double t, const std::vector<double>& values) {
  if (values.size() != names_.size())
    throw std::invalid_argument("TransientResult::append: value count mismatch");
  if (!times_.empty() && !(t > times_.back()))
    throw std::invalid_argument("TransientResult::append: time must increase");
  times_.push_back(t);
  for (std::size_t i = 0; i < values.size(); ++i) columns_[i].push_back(values[i]);
}

void TransientResult::reserve(std::size_t points) {
  times_.reserve(points);
  for (auto& c : columns_) c.reserve(points);
}

bool TransientResult::has_signal(const std::string& name) const {
  for (const auto& n : names_)
    if (n == name) return true;
  return false;
}

std::size_t TransientResult::index_of(const std::string& name) const {
  for (std::size_t i = 0; i < names_.size(); ++i)
    if (names_[i] == name) return i;
  throw std::out_of_range("TransientResult: unknown signal '" + name + "'");
}

waveform::Waveform TransientResult::waveform(const std::string& name) const {
  const std::size_t i = index_of(name);
  return waveform::Waveform(times_, columns_[i]);
}

double TransientResult::final_value(const std::string& name) const {
  const std::size_t i = index_of(name);
  SSN_REQUIRE(!times_.empty(), "TransientResult: empty result");
  return columns_[i].back();
}

}  // namespace ssnkit::sim
