#include "sim/recovery.hpp"

#include <utility>

namespace ssnkit::sim {

using support::RecoveryAttempt;
using support::SolverDiagnostics;
using support::SolverError;

const char* to_string(Fidelity fidelity) {
  switch (fidelity) {
    case Fidelity::kFullDevice: return "full-device";
    case Fidelity::kTightenedDamping: return "tighten-damping";
    case Fidelity::kAlternateIntegrator: return "alternate-integrator";
    case Fidelity::kGminRecovery: return "gmin-recovery";
    case Fidelity::kReducedTimestep: return "reduced-timestep";
    case Fidelity::kAnalytic: return "analytic";
    case Fidelity::kFailed: return "failed";
  }
  return "unknown";
}

namespace {

std::string describe(const TransientRun& run) {
  if (run.ok())
    return "accepted " + std::to_string(run.result.stats.accepted_steps) +
           " steps, " + std::to_string(run.result.stats.newton_failures) +
           " newton failures";
  return run.error->what();
}

}  // namespace

RecoveryOutcome run_transient_resilient(circuit::Circuit& ckt,
                                        const TransientOptions& opts,
                                        const RecoveryPolicy& policy) {
  RecoveryOutcome out;
  TransientOptions current = opts;
  std::optional<SolverError> last_error;

  // Try one rung; returns true when the ladder can stop climbing.
  const auto attempt = [&](const char* rung, Fidelity fidelity) -> bool {
    TransientRun run = run_transient_ex(ckt, current);
    out.attempts.push_back(RecoveryAttempt{rung, run.ok(), describe(run)});
    if (fidelity == Fidelity::kFullDevice && !run.ok())
      out.partial_full_fidelity = run.result;
    if (run.ok()) {
      out.result = std::move(run.result);
      out.fidelity = fidelity;
      return true;
    }
    last_error = std::move(run.error);
    return false;
  };

  if (attempt("full-device", Fidelity::kFullDevice)) return out;
  if (!policy.enabled || (last_error && !last_error->retryable())) {
    // Non-retryable (structurally singular circuits): climbing the ladder
    // would re-run the identical DC failure four more times for nothing.
    // The analytic rung in analysis/resilience.hpp can still apply.
    out.fidelity = Fidelity::kFailed;
  } else {
    if (policy.try_tighten_damping) {
      current.newton.max_voltage_step =
          opts.newton.max_voltage_step * policy.damping_factor;
      current.newton.max_iterations =
          opts.newton.max_iterations * policy.iteration_boost;
      if (attempt("tighten-damping", Fidelity::kTightenedDamping)) return out;
    }
    if (policy.try_alternate_integrator) {
      current.method = opts.method == policy.fallback_integrator
                           ? circuit::Integrator::kBackwardEuler
                           : policy.fallback_integrator;
      if (attempt("alternate-integrator", Fidelity::kAlternateIntegrator))
        return out;
    }
    if (policy.try_gmin_recovery) {
      current.newton_gmin_recovery = true;
      if (attempt("gmin-recovery", Fidelity::kGminRecovery)) return out;
    }
    if (policy.try_reduced_timestep) {
      const double span = opts.t_stop - opts.t_start;
      const double base_dt_max = opts.dt_max > 0.0 ? opts.dt_max : span / 50.0;
      current.dt_max = base_dt_max * policy.dt_max_shrink;
      if (current.dt_initial > current.dt_max)
        current.dt_initial = current.dt_max;
      if (attempt("reduced-timestep", Fidelity::kReducedTimestep)) return out;
    }
    out.fidelity = Fidelity::kFailed;
  }

  // Re-wrap the last error with the full recovery trail attached so the
  // caller (or the analytic fallback layer) sees what was already tried.
  if (last_error) {
    SolverDiagnostics diag = last_error->diagnostics();
    diag.recovery_trail = out.attempts;
    out.error.emplace(last_error->kind(), "recovery ladder exhausted",
                      std::move(diag));
  }
  return out;
}

}  // namespace ssnkit::sim
