// Small-signal frequency sweep (.AC): linearize the circuit at its DC
// operating point and solve (G + j*omega*C) x = b over a log-spaced
// frequency grid. Excitations come from VoltageSource/CurrentSource
// set_ac() calls; all other sources are quiet (shorts/opens).
#pragma once

#include "circuit/circuit.hpp"
#include "numeric/complex_la.hpp"
#include "sim/engine.hpp"

#include <string>
#include <vector>

namespace ssnkit::sim {

struct AcOptions {
  double f_start = 1e6;        ///< [Hz], must be > 0
  double f_stop = 100e9;       ///< [Hz], must be > f_start
  int points_per_decade = 20;  ///< log sweep density
  NewtonOptions newton;        ///< for the DC operating point
};

class AcResult {
 public:
  AcResult(std::vector<std::string> signal_names, std::vector<double> freqs);

  const std::vector<std::string>& signal_names() const { return names_; }
  const std::vector<double>& frequencies() const { return freqs_; }
  std::size_t point_count() const { return freqs_.size(); }

  void set_point(std::size_t f_index, const numeric::CVector& x);

  /// Complex response of `name` at frequency index `i`.
  numeric::Complex value(const std::string& name, std::size_t i) const;
  /// |X(f)| for all frequencies.
  std::vector<double> magnitude(const std::string& name) const;
  /// 20*log10|X(f)|.
  std::vector<double> magnitude_db(const std::string& name) const;
  /// Phase in degrees, principal value.
  std::vector<double> phase_deg(const std::string& name) const;

  /// Frequency of the magnitude peak of a signal.
  struct Peak {
    double frequency = 0.0;
    double magnitude = 0.0;
  };
  Peak peak(const std::string& name) const;

 private:
  std::size_t index_of(const std::string& name) const;

  std::vector<std::string> names_;
  std::vector<double> freqs_;
  std::vector<std::vector<numeric::Complex>> columns_;  // per signal
};

/// Run the sweep. Signals follow the transient convention: node names plus
/// "I(element)" branch currents.
AcResult run_ac(circuit::Circuit& ckt, const AcOptions& opts);

}  // namespace ssnkit::sim
