// Simulation results: named signals over time. Node voltages are recorded
// under their node names ("vssi"), branch currents as "I(element)".
#pragma once

#include "verify/trust.hpp"
#include "waveform/waveform.hpp"

#include <map>
#include <string>
#include <vector>

namespace ssnkit::sim {

struct SolverStats {
  std::size_t accepted_steps = 0;
  std::size_t rejected_steps = 0;     ///< LTE rejections
  std::size_t newton_failures = 0;    ///< step retries due to non-convergence
  std::size_t newton_iterations = 0;  ///< total across all steps
  std::size_t nonfinite_rejections = 0;  ///< Newton updates rejected for NaN/Inf
  std::size_t gmin_rescues = 0;       ///< timepoints saved by the gmin ramp
  std::size_t dc_iterations = 0;
  bool dc_used_gmin_stepping = false;
  bool dc_used_source_stepping = false;
  // Trust-layer bookkeeping (src/verify): the per-accepted-step scaled
  // residual checks and the once-per-run Hager condition estimate.
  std::size_t residual_checks = 0;       ///< accepted steps verified
  std::size_t residual_refinements = 0;  ///< iterative-refinement rescues
  double worst_scaled_residual = 0.0;    ///< max over accepted steps
  double condition_estimate = 0.0;       ///< Hager estimate; 0 = not run
};

class TransientResult {
 public:
  /// An empty result with no signals (placeholder for failed runs).
  TransientResult() = default;
  TransientResult(std::vector<std::string> signal_names);

  /// Append one accepted time point; values must match the signal count.
  void append(double t, const std::vector<double>& values);

  /// Preallocate storage for roughly `points` time points so the transient
  /// hot loop appends without per-step reallocation.
  void reserve(std::size_t points);

  const std::vector<std::string>& signal_names() const { return names_; }
  bool has_signal(const std::string& name) const;

  std::size_t point_count() const { return times_.size(); }
  const std::vector<double>& times() const { return times_; }

  /// Extract one signal as a waveform; throws std::out_of_range when the
  /// name is unknown.
  waveform::Waveform waveform(const std::string& name) const;

  /// Value of a signal at the final time point.
  double final_value(const std::string& name) const;

  SolverStats stats;

  /// How this result was verified (src/verify): the engine fills the
  /// verdict, worst residual and condition estimate; analysis layers merge
  /// their physics-invariant findings on top.
  verify::TrustReport trust;

 private:
  std::size_t index_of(const std::string& name) const;

  std::vector<std::string> names_;
  std::vector<double> times_;
  std::vector<std::vector<double>> columns_;  // one per signal
};

}  // namespace ssnkit::sim
