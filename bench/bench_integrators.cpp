// Solver-quality bench: the three integration methods and the adaptive
// controller on the reference SSN testbench — accuracy (vs a tight
// trapezoidal run) against the number of accepted steps. This is the
// evidence for trusting the default (adaptive trapezoidal) configuration
// used by every reproduction bench.
#include "bench_util.hpp"

#include "analysis/calibrate.hpp"
#include "analysis/measure.hpp"
#include "io/table.hpp"
#include "numeric/stats.hpp"

#include <cstdio>

using namespace ssnkit;

int main() {
  benchutil::banner("Solver ablation: integrator and step control on the SSN bench");

  const auto cal = analysis::calibrate(process::tech_180nm());
  circuit::SsnBenchSpec spec;
  spec.tech = cal.tech;
  spec.n_drivers = 8;
  spec.input_rise_time = 0.1e-9;

  const auto run_with = [&](circuit::Integrator method, bool adaptive,
                            double dt_fixed) {
    analysis::MeasureOptions mopts;
    mopts.transient.method = method;
    mopts.transient.adaptive = adaptive;
    if (!adaptive) mopts.transient.dt_initial = dt_fixed;
    mopts.transient.dt_max = spec.input_rise_time / 50.0;
    return analysis::measure_ssn(spec, mopts);
  };

  // Reference: trapezoidal with a very tight fixed step.
  const double v_ref = run_with(circuit::Integrator::kTrapezoidal, false,
                                spec.input_rise_time / 20000.0)
                           .v_max;
  std::printf("reference V_max (trap, 20000 fixed steps): %.6f V\n\n", v_ref);

  io::TextTable table({"method", "step control", "accepted steps",
                       "V_max [V]", "err vs ref [ppm]"});
  struct Config {
    const char* name;
    circuit::Integrator method;
    bool adaptive;
    double dt = 0.0;
  };
  const Config configs[] = {
      {"backward Euler", circuit::Integrator::kBackwardEuler, true, 0.0},
      {"trapezoidal", circuit::Integrator::kTrapezoidal, true, 0.0},
      {"Gear-2", circuit::Integrator::kGear2, true, 0.0},
      {"backward Euler", circuit::Integrator::kBackwardEuler, false, 1e-12},
      {"trapezoidal", circuit::Integrator::kTrapezoidal, false, 1e-12},
      {"Gear-2", circuit::Integrator::kGear2, false, 1e-12},
  };
  for (const auto& cfg : configs) {
    const auto m = run_with(cfg.method, cfg.adaptive, cfg.dt);
    table.add_row({cfg.name, cfg.adaptive ? "adaptive (LTE)" : "fixed 1 ps",
                   std::to_string(m.stats.accepted_steps),
                   io::si_format(m.v_max, 6),
                   io::si_format(1e6 * numeric::relative_error(m.v_max, v_ref),
                                 3)});
  }
  std::printf("%s", table.to_string().c_str());
  std::printf(
      "\nreading: the adaptive trapezoidal default reaches ppm-level peak\n"
      "accuracy in ~100 steps; backward Euler needs its first-order error\n"
      "absorbed by far smaller steps — the usual stiff-circuit trade-offs,\n"
      "reproduced on this workload.\n");
  return 0;
}
