// Reproduces Fig. 1 of the paper: the golden (BSIM3 stand-in) NMOS I-V
// characteristic in the SSN operating region — I_D vs V_G at several source
// voltages, drain at V_DD — overlaid with the fitted linear ASDM.
//
// Paper reference points (TSMC 0.18 um): the linear model tracks the BSIM3
// curves except very near threshold; lambda > 1; V_x = 0.61 V while
// V_T ~ 0.5 V.
#include "bench_util.hpp"

#include "devices/fit.hpp"
#include "waveform/render.hpp"
#include "io/table.hpp"
#include "process/technology.hpp"
#include "waveform/waveform.hpp"

#include <cstdio>
#include <vector>

using namespace ssnkit;

namespace {

void run_for(const process::Technology& tech, process::GoldenKind kind,
             const char* kind_name) {
  benchutil::section(tech.name + std::string(" / golden = ") + kind_name);
  const auto golden = tech.make_golden(kind);

  devices::AsdmFitRegion region;
  region.vd = tech.vdd;
  region.vg_lo = 0.45 * tech.vdd;
  region.vg_hi = tech.vdd;
  region.vs_lo = 0.0;
  region.vs_hi = 0.45 * tech.vdd;
  const auto fit = devices::fit_asdm(*golden, region);
  const devices::AsdmModel asdm(fit.params);

  std::printf("fitted ASDM:  K = %.4g A/V   lambda = %.4f   V_x = %.4f V\n",
              fit.params.k, fit.params.lambda, fit.params.vx);
  std::printf("fit quality:  rms = %s A   max = %s A   max/Imax = %.2f %%   "
              "(%zu samples)\n",
              io::si_format(fit.rms_error).c_str(),
              io::si_format(fit.max_abs_error).c_str(),
              benchutil::pct(fit.max_rel_error), fit.samples);

  // The paper's observations, checked numerically.
  std::printf("paper checks: lambda > 1: %s;  V_x (%.3f V) > V_T0 (%.3f V): %s\n",
              fit.params.lambda > 1.0 ? "yes" : "NO",
              fit.params.vx, tech.alpha_power.vt0,
              fit.params.vx > tech.alpha_power.vt0 ? "yes" : "NO");

  // I_D vs V_G table at the paper's source voltages.
  const std::vector<double> vs_points = {0.0, 0.1 * tech.vdd / 0.9,
                                         0.2 * tech.vdd / 0.9,
                                         0.3 * tech.vdd / 0.9,
                                         0.4 * tech.vdd / 0.9};
  io::TextTable table({"V_G [V]", "V_S [V]", "golden I_D [mA]", "ASDM I_D [mA]",
                       "err [%]"});
  for (double vs : {0.0, 0.2, 0.4}) {
    for (double vg = 0.8; vg <= tech.vdd + 1e-9; vg += 0.25) {
      const double i_golden = golden->ids(vg - vs, tech.vdd - vs, -vs);
      const double i_asdm = asdm.ids_gate_source(vg, vs);
      table.add_row({vg, vs, i_golden * 1e3, i_asdm * 1e3,
                     i_golden > 1e-5 ? benchutil::pct((i_asdm - i_golden) /
                                                      i_golden)
                                     : 0.0});
    }
  }
  std::printf("%s", table.to_string().c_str());

  // Fig. 1 as an ASCII chart: golden (dashed in the paper) vs linear model.
  std::vector<waveform::Waveform> curves;
  std::vector<const waveform::Waveform*> ptrs;
  std::vector<std::string> names;
  for (double vs : {0.0, 0.4}) {
    curves.push_back(waveform::Waveform::from_function(
        [&, vs](double vg) { return golden->ids(vg - vs, tech.vdd - vs, -vs) * 1e3; },
        0.0, tech.vdd, 120));
    names.push_back("golden vs=" + io::si_format(vs));
    curves.push_back(waveform::Waveform::from_function(
        [&, vs](double vg) { return asdm.ids_gate_source(vg, vs) * 1e3; }, 0.0,
        tech.vdd, 120));
    names.push_back("asdm vs=" + io::si_format(vs));
  }
  for (const auto& c : curves) ptrs.push_back(&c);
  io::ChartOptions copts;
  copts.title = "Fig.1  I_D [mA] vs V_G [V]  (" + tech.name + ")";
  copts.x_label = "V_G [V]";
  copts.y_label = "I_D [mA]";
  std::printf("%s", waveform::ascii_chart(ptrs, names, copts).c_str());
  (void)vs_points;
}

}  // namespace

int main() {
  benchutil::banner(
      "Fig. 1 reproduction: ASDM fit of the golden MOSFET in the SSN region");
  for (const auto& tech :
       {process::tech_180nm(), process::tech_250nm(), process::tech_350nm()}) {
    run_for(tech, process::GoldenKind::kAlphaPower, "alpha-power");
  }
  // A structurally different golden surface (velocity-saturation model).
  run_for(process::tech_180nm(), process::GoldenKind::kBsimLite, "bsim-lite");
  return 0;
}
