// Reproduces Fig. 3 of the paper: maximum SSN voltage vs the number of
// simultaneously switching drivers, comparing this work's closed form
// against the reconstructed Vemuru '96 and Song '99 baselines (plus the
// classic Senthinathan-Prince square law), with the transient simulator as
// the HSPICE stand-in. Repeated for the 0.25 um and 0.35 um class processes
// as the paper reports ("similar results are also observed").
#include "bench_util.hpp"

#include "analysis/sweeps.hpp"
#include "io/ascii_chart.hpp"
#include "io/csv.hpp"
#include "io/table.hpp"

#include <cstdio>

using namespace ssnkit;

namespace {

void run_for(const process::Technology& tech) {
  benchutil::section(tech.name);

  analysis::DriverSweepConfig config;
  config.tech = tech;
  config.driver_counts = {1, 2, 4, 6, 8, 10, 12, 14, 16};
  const auto result = analysis::run_driver_sweep(config);  // ssnlint-ignore(SSN-L013)

  io::TextTable table({"N", "sim [V]", "this work [V]", "err%", "Vemuru [V]",
                       "err%", "Song [V]", "err%", "Senthinathan [V]", "err%"});
  double sum_this = 0, sum_vem = 0, sum_song = 0, sum_sp = 0;
  std::vector<double> xs;
  std::vector<double> y_sim, y_this, y_vem, y_song;
  for (const auto& r : result.rows) {
    table.add_row({double(r.n), r.sim, r.this_work, benchutil::pct(r.err_this),
                   r.vemuru, benchutil::pct(r.err_vemuru), r.song,
                   benchutil::pct(r.err_song), r.senthinathan,
                   benchutil::pct(r.err_senthinathan)},
                  4);
    sum_this += r.err_this;
    sum_vem += r.err_vemuru;
    sum_song += r.err_song;
    sum_sp += r.err_senthinathan;
    xs.push_back(double(r.n));
    y_sim.push_back(r.sim);
    y_this.push_back(r.this_work);
    y_vem.push_back(r.vemuru);
    y_song.push_back(r.song);
  }
  std::printf("%s", table.to_string().c_str());

  const double n = double(result.rows.size());
  std::printf("\nmean |error| vs simulator:  this work %.2f %%   "
              "Vemuru %.2f %%   Song %.2f %%   Senthinathan-Prince %.2f %%\n",
              benchutil::pct(sum_this / n), benchutil::pct(sum_vem / n),
              benchutil::pct(sum_song / n), benchutil::pct(sum_sp / n));
  std::printf("paper's claim (new model most accurate across N): %s\n",
              (sum_this <= sum_vem && sum_this <= sum_song && sum_this <= sum_sp)
                  ? "REPRODUCED"
                  : "NOT reproduced");

  io::ChartOptions copts;
  copts.title = "Fig.3  max SSN [V] vs N  (" + tech.name + ")";
  copts.x_label = "N drivers";
  copts.y_label = "V_max";
  std::printf("%s", io::ascii_xy_chart(xs, {y_sim, y_this, y_vem, y_song},
                                       {"sim", "this work", "Vemuru", "Song"},
                                       copts)
                        .c_str());

  io::CsvWriter csv({"n", "sim", "this_work", "vemuru", "song", "senthinathan"});
  for (const auto& r : result.rows)
    csv.add_row({double(r.n), r.sim, r.this_work, r.vemuru, r.song,
                 r.senthinathan});
  const std::string path = "fig3_driver_sweep_" + tech.name + ".csv";
  csv.write_file(path);
  std::printf("wrote %s\n", path.c_str());
}

}  // namespace

int main() {
  benchutil::banner(
      "Fig. 3 reproduction: max SSN vs number of switching drivers");
  run_for(process::tech_180nm());
  run_for(process::tech_250nm());
  run_for(process::tech_350nm());
  return 0;
}
