// Extension bench: how much peak does the paper's [0, t_r] window miss?
//
// Table 1 evaluates the maximum only while the input ramps. Physically the
// resonator keeps moving after t_r; for fast edges (case 3b) most of the
// swing happens there. This bench compares, against a simulation run well
// past the ramp: (a) the paper's Table 1 value, (b) our analytic post-ramp
// continuation (v_max_extended), at several edge rates.
#include "bench_util.hpp"

#include "analysis/calibrate.hpp"
#include "analysis/measure.hpp"
#include "core/lc_model.hpp"
#include "devices/asdm.hpp"
#include "io/table.hpp"
#include "numeric/stats.hpp"

#include <cstdio>

using namespace ssnkit;

int main() {
  benchutil::banner(
      "Extension: the true (post-ramp) SSN peak vs the paper's window");

  const auto cal = analysis::calibrate(process::tech_180nm());
  core::SsnScenario base;
  base.n_drivers = 2;  // few drivers -> weak damping -> under-damped
  base.inductance = 5e-9;
  base.capacitance = 1e-12;
  base.vdd = cal.tech.vdd;
  base.device = cal.asdm.params;

  io::TextTable table({"t_r [ps]", "case", "Table 1 V_max [V]",
                       "extended V_max [V]", "sim V_max (3*t_r) [V]",
                       "ext err %", "window misses"});
  for (double tr_ps : {400.0, 100.0, 50.0, 25.0}) {
    const double tr = tr_ps * 1e-12;
    const core::SsnScenario s = base.with_slope(base.vdd / tr);
    const core::LcModel m(s);
    const auto ext = m.v_max_extended();

    // Simulate the same ASDM device (isolates the formula) past the ramp.
    circuit::SsnBenchSpec spec;
    spec.tech = cal.tech;
    spec.n_drivers = s.n_drivers;
    spec.input_rise_time = tr;
    spec.package.inductance = s.inductance;
    spec.package.capacitance = s.capacitance;
    spec.include_pullup = false;
    // A large pad load keeps the output near vdd for the whole extended
    // window, preserving the saturation assumption the ASDM relies on.
    spec.load_cap = 100e-12;
    spec.pulldown_override = std::make_shared<devices::AsdmModel>(s.device);
    analysis::MeasureOptions mopts;
    mopts.overshoot_factor = 12.0;
    mopts.transient.dt_max = tr / 100.0;
    const auto meas = analysis::measure_ssn(spec, mopts);  // ssnlint-ignore(SSN-L013)
    const double v_sim = meas.vssi.maximum().value;  // over the whole run

    table.add_row(
        {io::si_format(tr_ps, 4), core::to_string(m.max_case()),
         io::si_format(m.v_max(), 4), io::si_format(ext.v, 4),
         io::si_format(v_sim, 4),
         io::si_format(
             benchutil::pct(numeric::relative_error(ext.v, v_sim)), 3),
         io::si_format(benchutil::pct(1.0 - m.v_max() / v_sim), 3) + "%"});
  }
  std::printf("%s", table.to_string().c_str());

  std::printf(
      "\nreading: for slow edges the window is harmless, but as the edge\n"
      "shrinks below the resonator's half-period the paper's boundary value\n"
      "misses most of the physical peak, while the analytic continuation\n"
      "(free damped response from the t_r state) tracks the simulator to\n"
      "within a fraction of a percent everywhere.\n");
  return 0;
}
