// Extension bench: glitches on QUIET outputs — the paper's first-listed
// SSN symptom ("generates glitches on the ground and power-supply wires"
// that couple into non-switching outputs).
//
// A quiet driver holding its pad LOW has its NMOS fully on, so the pad is
// pulled toward the bouncing internal ground through the device's on
// resistance; the pad load capacitance low-pass filters the brief bounce.
// This bench sweeps N switching neighbours and reports the quiet-pad
// glitch for a heavily loaded pad (10 pF) and a lightly loaded one (0.5 pF
// — e.g. an on-package trace), against a V_IL = 0.3*vdd margin.
#include "bench_util.hpp"

#include "analysis/calibrate.hpp"
#include "analysis/measure.hpp"
#include "circuit/testbench.hpp"
#include "io/table.hpp"
#include "sim/engine.hpp"

#include <cstdio>

using namespace ssnkit;

int main() {
  benchutil::banner("Extension: glitch amplitude on quiet (logic-low) outputs");

  const auto cal = analysis::calibrate(process::tech_180nm());
  const double t_rise = 0.1e-9;
  const double vil = 0.3 * cal.tech.vdd;

  const auto run_case = [&](int n, double victim_load, double& v_n,
                            double& glitch) {
    circuit::SsnBenchSpec spec;
    spec.tech = cal.tech;
    spec.n_drivers = n;
    spec.n_quiet = 1;  // one victim
    spec.input_rise_time = t_rise;
    circuit::SsnBench bench = circuit::make_ssn_testbench(spec);
    const std::string victim = std::to_string(n);
    // The bench ties quiet inputs low (victim holds HIGH); flip it: drive
    // the victim input high so its NMOS holds the pad LOW.
    bench.circuit.remove_element("Vin" + victim);
    bench.circuit.add_vsource("Vin" + victim,
                              bench.circuit.find_node("in" + victim),
                              circuit::kGround, waveform::Dc{cal.tech.vdd});
    // Adjust the victim's pad load.
    bench.circuit.remove_element("Cl" + victim);
    bench.circuit.add_capacitor("Cl" + victim,
                                bench.circuit.find_node("out" + victim),
                                circuit::kGround, victim_load);
    sim::TransientOptions topts;
    topts.t_stop = t_rise * 2.0;
    topts.dt_max = t_rise / 200.0;
    const auto result = sim::run_transient(bench.circuit, topts);  // ssnlint-ignore(SSN-L013)
    v_n = result.waveform("vssi").maximum().value;
    glitch = result.waveform("out" + victim).maximum().value;
  };

  io::TextTable table({"N switching", "V_n peak [V]", "glitch @10pF [V]",
                       "glitch @0.5pF [V]", "light/V_n", "vs V_IL=0.54V"});
  for (int n : {2, 4, 8, 12, 16}) {
    double v_n = 0.0, heavy = 0.0, light = 0.0, v_n2 = 0.0;
    run_case(n, 10e-12, v_n, heavy);
    run_case(n, 0.5e-12, v_n2, light);
    table.add_row({io::si_format(double(n), 2), io::si_format(v_n, 4),
                   io::si_format(heavy, 4), io::si_format(light, 4),
                   io::si_format(light / v_n, 3),
                   light > vil ? "LOGIC UPSET" : "ok"});
  }
  std::printf("%s", table.to_string().c_str());
  std::printf(
      "\nreading: a heavily loaded quiet pad low-pass filters the brief\n"
      "bounce (R_on*C_L exceeds the ramp), but a lightly loaded victim tracks\n"
      "a large fraction of V_n; when that crosses the receiver's V_IL the\n"
      "quiet line reads as a spurious HIGH — the failure mode that makes\n"
      "accurate V_max prediction a sign-off requirement.\n");
  return 0;
}
