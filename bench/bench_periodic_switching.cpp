// Extension bench: resonant SSN amplification under periodic switching.
//
// The paper analyzes one switching event. Real buses toggle periodically,
// and each event leaves the under-damped ground tank ringing (see
// bench_post_ramp); when the data period approaches the ring period
// 2*pi/omega_d the residues add coherently and the steady-state bounce
// exceeds the single-shot value. This bench drives a small bank with a
// PULSE train and sweeps the period around the resonance.
#include "bench_util.hpp"

#include "analysis/calibrate.hpp"
#include "core/lc_model.hpp"
#include "io/table.hpp"
#include "sim/engine.hpp"

#include <cmath>
#include <cstdio>

using namespace ssnkit;
using namespace ssnkit::circuit;

namespace {

double steady_state_bounce(const analysis::Calibration& cal, double period,
                           int cycles) {
  Circuit ckt;
  const auto& tech = cal.tech;
  const int n_drivers = 2;  // lightly damped
  const double t_edge = 50e-12;

  const NodeId n_vdd = ckt.node("vdd");
  const NodeId n_vssi = ckt.node("vssi");
  ckt.add_vsource("Vdd", n_vdd, kGround, waveform::Dc{tech.vdd});
  ckt.add_inductor("Lgnd", n_vssi, kGround, 5e-9);
  ckt.add_capacitor("Cpad", n_vssi, kGround, 1e-12);

  std::shared_ptr<const devices::MosfetModel> nmos(tech.make_golden());
  std::shared_ptr<const devices::MosfetModel> pmos(tech.make_golden());
  for (int i = 0; i < n_drivers; ++i) {
    const std::string idx = std::to_string(i);
    const NodeId in = ckt.node("in" + idx);
    const NodeId out = ckt.node("out" + idx);
    ckt.add_vsource("Vin" + idx, in, kGround,
                    waveform::Pulse{0.0, tech.vdd, 0.0, t_edge, t_edge,
                                    period / 2.0 - t_edge, period});
    ckt.add_mosfet("Mn" + idx, out, in, n_vssi, kGround, nmos);
    ckt.add_mosfet("Mp" + idx, out, in, n_vdd, n_vdd, pmos,
                   MosfetPolarity::kPmos);
    ckt.add_capacitor("Cl" + idx, out, kGround, 2e-12);
  }

  sim::TransientOptions opts;
  opts.t_stop = period * cycles;
  opts.dt_max = t_edge / 10.0;
  const auto result = sim::run_transient(ckt, opts);  // ssnlint-ignore(SSN-L013)
  // Steady state: maximum over the last third of the run.
  const auto vssi = result.waveform("vssi");
  return vssi.maximum_in(opts.t_stop * 2.0 / 3.0, opts.t_stop).value;
}

}  // namespace

int main() {
  benchutil::banner(
      "Extension: resonant SSN amplification under periodic switching");

  const auto cal = analysis::calibrate(process::tech_180nm());

  core::SsnScenario s;
  s.n_drivers = 2;
  s.inductance = 5e-9;
  s.capacitance = 1e-12;
  s.vdd = cal.tech.vdd;
  s.slope = cal.tech.vdd / 50e-12;
  s.device = cal.asdm.params;
  const core::LcModel model(s);
  const double ring_period = 2.0 * M_PI / model.omega_d();
  std::printf("tank: zeta = %.3f, ring period 2*pi/omega_d = %s s\n",
              model.zeta(), io::si_format(ring_period).c_str());
  std::printf("single event (paper's scope): V_max = %s V\n\n",
              io::si_format(model.v_max_extended().v, 4).c_str());

  io::TextTable table({"switching period [ps]", "period / ring period",
                       "steady-state bounce [V]", "vs single event"});
  const double single = steady_state_bounce(cal, ring_period * 8.0, 4);
  for (double ratio : {0.5, 0.75, 1.0, 1.5, 2.0, 4.0}) {
    const double period = ring_period * ratio;
    const double v = steady_state_bounce(cal, period, 12);
    table.add_row({io::si_format(period * 1e12, 4), io::si_format(ratio, 3),
                   io::si_format(v, 4),
                   io::si_format(v / single, 3) + "x"});
  }
  std::printf("%s", table.to_string().c_str());

  std::printf(
      "\nreading: switching every ring period (ratio = 1) pumps the tank —\n"
      "the steady-state bounce exceeds the isolated-event value the paper\n"
      "models, while asynchronous-looking periods (ratio >> 1) relax back to\n"
      "it. SSN budgeting against periodic buses needs either margin or a\n"
      "period kept away from 2*pi*sqrt(L*C).\n");
  return 0;
}
