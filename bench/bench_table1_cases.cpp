// Reproduces Table 1 of the paper: the four maximum-SSN formulas and the
// conditions selecting them. For each case we build a scenario that lands
// in it, evaluate the Table 1 formula, and cross-check against (i) the
// maximum of the model's own sampled waveform and (ii) the transient
// simulator driven by the same ASDM device (formula error only).
#include "bench_util.hpp"

#include "analysis/calibrate.hpp"
#include "analysis/measure.hpp"
#include "core/lc_model.hpp"
#include "devices/asdm.hpp"
#include "io/table.hpp"
#include "numeric/stats.hpp"

#include <cmath>
#include <cstdio>
#include <numbers>

using namespace ssnkit;

namespace {

struct CaseSetup {
  const char* description;
  core::SsnScenario scenario;
};

double simulate_vmax(const analysis::Calibration& cal,
                     const core::SsnScenario& s) {
  circuit::SsnBenchSpec spec;
  spec.tech = cal.tech;
  spec.tech.vdd = s.vdd;
  spec.n_drivers = s.n_drivers;
  spec.input_rise_time = s.vdd / s.slope;
  spec.package.inductance = s.inductance;
  spec.package.capacitance = s.capacitance;
  spec.include_package_c = s.capacitance > 0.0;
  spec.include_pullup = false;
  devices::AsdmParams dev = s.device;
  spec.pulldown_override = std::make_shared<devices::AsdmModel>(dev);
  analysis::MeasureOptions mopts;
  mopts.transient.dt_max = spec.input_rise_time / 400.0;
  return analysis::measure_ssn(spec, mopts).v_max;  // ssnlint-ignore(SSN-L013)
}

}  // namespace

int main() {
  benchutil::banner("Table 1 reproduction: the four max-SSN formulas");

  const auto cal = analysis::calibrate(process::tech_180nm());
  core::SsnScenario base;
  base.n_drivers = 8;
  base.inductance = 5e-9;
  base.vdd = cal.tech.vdd;
  base.slope = cal.tech.vdd / 0.1e-9;
  base.device = cal.asdm.params;
  const double c_crit = base.critical_capacitance();

  const CaseSetup setups[] = {
      {"case 1: over-damped (C = 0.3 C_crit)",
       base.with_capacitance(0.3 * c_crit)},
      {"case 2: critically damped (C = C_crit)", base.with_capacitance(c_crit)},
      {"case 3a: under-damped, slow ramp (C = 9 C_crit, S/40)",
       base.with_capacitance(9.0 * c_crit).with_slope(base.slope / 40.0)},
      {"case 3b: under-damped, fast ramp (C = 9 C_crit, 2S)",
       base.with_capacitance(9.0 * c_crit).with_slope(base.slope * 2.0)},
  };

  io::TextTable table({"case", "zeta", "pi/w_d vs ramp", "formula V_max [V]",
                       "waveform max [V]", "sim (ASDM) [V]", "err vs sim %"});
  for (const auto& setup : setups) {
    const core::LcModel m(setup.scenario);
    const double v_formula = m.v_max();
    const double v_waveform = m.vn_waveform(8192).maximum().value;
    const double v_sim = simulate_vmax(cal, setup.scenario);
    std::string timing = "-";
    if (m.region() == core::DampingRegion::kUnderDamped) {
      const double peak = std::numbers::pi / m.omega_d();
      const double ramp = setup.scenario.active_ramp();
      timing = io::si_format(peak, 3) + (peak <= ramp ? " <= " : " > ") +
               io::si_format(ramp, 3);
    }
    table.add_row({core::to_string(m.max_case()), io::si_format(m.zeta(), 4),
                   timing, io::si_format(v_formula, 5),
                   io::si_format(v_waveform, 5), io::si_format(v_sim, 5),
                   io::si_format(
                       benchutil::pct(numeric::relative_error(v_formula, v_sim)),
                       3)});
    std::printf("%s\n", setup.description);
  }
  std::printf("\n");
  std::printf("%s", table.to_string().c_str());

  std::printf("\nC_crit = (N K lambda)^2 L / 4 = %s F for the base setup "
              "(N=8, L=5 nH)\n",
              io::si_format(c_crit).c_str());
  std::printf("All four Table 1 rows exercised; formula == waveform max and "
              "tracks the simulator.\n");
  return 0;
}
