// Reproduces the paper's Eqn 27 discussion: the critical capacitance
// C_crit = (N*K*lambda)^2 * L / 4 is quadratic in the driver count, so
// small-N systems are typically under-damped (the L-only model fails there)
// and large-N systems over-damped. This bench maps the damping region over
// N for the PGA package's fixed 1 pF pad capacitance.
#include "bench_util.hpp"

#include "analysis/calibrate.hpp"
#include "core/lc_model.hpp"
#include "io/table.hpp"

#include <cstdio>

using namespace ssnkit;

int main() {
  benchutil::banner("Eqn 27: critical capacitance vs driver count");

  const auto cal = analysis::calibrate(process::tech_180nm());
  const auto pkg = process::package_pga();

  io::TextTable table({"N", "C_crit [pF]", "C_pad/C_crit", "region at C=1pF",
                       "zeta", "Table-1 case"});
  int transitions = 0;
  core::DampingRegion prev_region = core::DampingRegion::kUnderDamped;
  for (int n : {1, 2, 3, 4, 6, 8, 12, 16, 24, 32}) {
    const auto scenario =
        analysis::make_scenario(cal, pkg, n, 0.1e-9, /*include_c=*/true);
    const core::LcModel m(scenario);
    const double c_crit = scenario.critical_capacitance();
    table.add_row({io::si_format(double(n), 3), io::si_format(c_crit * 1e12, 4),
                   io::si_format(pkg.capacitance / c_crit, 3),
                   core::to_string(m.region()), io::si_format(m.zeta(), 4),
                   core::to_string(m.max_case())});
    if (n > 1 && m.region() != prev_region) ++transitions;
    prev_region = m.region();
  }
  std::printf("%s", table.to_string().c_str());

  // Quadratic check.
  const auto s4 = analysis::make_scenario(cal, pkg, 4, 0.1e-9, true);
  const auto s8 = analysis::make_scenario(cal, pkg, 8, 0.1e-9, true);
  std::printf("\nC_crit(8)/C_crit(4) = %.4f (expected 4.0: quadratic in N)\n",
              s8.critical_capacitance() / s4.critical_capacitance());
  std::printf("paper's observation: under-damped at small N, over-damped at "
              "large N -> %s\n",
              transitions >= 1 ? "REPRODUCED" : "NOT reproduced");
  return 0;
}
