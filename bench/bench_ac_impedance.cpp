// Extension bench: the SSN story in the frequency domain.
//
// The paper's damping ratio zeta = (N*K*lambda/2)*sqrt(L/C) is exactly the
// damping of the ground-path resonator formed by the package L, the pad C
// and the conducting drivers (whose transconductance is the only damping
// element). This bench linearizes the driver bank mid-switching, injects a
// 1 A AC probe into the internal ground node, and shows how the impedance
// peak at f0 = 1/(2*pi*sqrt(L*C)) flattens as N (and with it the damping)
// grows — the frequency-domain face of Fig. 4's over/under-damped split.
#include "bench_util.hpp"

#include "analysis/calibrate.hpp"
#include "core/lc_model.hpp"
#include "io/ascii_chart.hpp"
#include "io/table.hpp"
#include "sim/ac.hpp"

#include <cmath>
#include <cstdio>

using namespace ssnkit;
using namespace ssnkit::circuit;

namespace {

sim::AcResult probe_ground_impedance(const analysis::Calibration& cal,
                                     int n_drivers, double l, double c,
                                     double vg_bias) {
  Circuit ckt;
  const auto& tech = cal.tech;
  const NodeId n_vdd = ckt.node("vdd");
  const NodeId n_vssi = ckt.node("vssi");
  ckt.add_vsource("Vdd", n_vdd, kGround, waveform::Dc{tech.vdd});
  ckt.add_inductor("Lgnd", n_vssi, kGround, l);
  ckt.add_capacitor("Cpad", n_vssi, kGround, c);

  std::shared_ptr<const devices::MosfetModel> nmos(tech.make_golden());
  for (int i = 0; i < n_drivers; ++i) {
    const std::string idx = std::to_string(i);
    const NodeId in = ckt.node("in" + idx);
    const NodeId out = ckt.node("out" + idx);
    // Bias mid-switching: the pull-down conducts, its gm damps the tank.
    ckt.add_vsource("Vin" + idx, in, kGround, waveform::Dc{vg_bias});
    ckt.add_mosfet("Mn" + idx, out, in, n_vssi, kGround, nmos);
    ckt.add_resistor("Rload" + idx, n_vdd, out, 200.0);  // keeps M saturated
    ckt.add_capacitor("Cl" + idx, out, kGround, tech.load_cap);
  }

  auto& probe = ckt.add_isource("Iprobe", kGround, n_vssi, waveform::Dc{0.0});
  probe.set_ac(1.0);

  sim::AcOptions opts;
  opts.f_start = 2e8;
  opts.f_stop = 2e11;
  opts.points_per_decade = 60;
  return sim::run_ac(ckt, opts);
}

}  // namespace

int main() {
  benchutil::banner(
      "Extension: ground-path impedance |Z(f)| and the damping ratio");

  const auto cal = analysis::calibrate(process::tech_180nm());
  const double l = 5e-9, c = 1e-12;
  const double f0 = 1.0 / (2.0 * M_PI * std::sqrt(l * c));
  std::printf("package: L = 5 nH, C = 1 pF -> f0 = %s Hz\n",
              io::si_format(f0).c_str());

  core::SsnScenario base;
  base.inductance = l;
  base.capacitance = c;
  base.vdd = cal.tech.vdd;
  base.slope = cal.tech.vdd / 0.1e-9;
  base.device = cal.asdm.params;

  io::TextTable table({"N conducting", "zeta (paper)", "region",
                       "|Z| peak [Ohm]", "f_peak [GHz]",
                       "peak / |Z(f0/10)|"});
  std::vector<double> log_f;
  std::vector<std::vector<double>> curves;
  std::vector<std::string> names;
  for (int n : {1, 2, 8, 16}) {
    const core::LcModel model(base.with_drivers(n));
    const auto res = probe_ground_impedance(cal, n, l, c, 0.5 * cal.tech.vdd +
                                                              0.35);
    const auto peak = res.peak("vssi");
    const auto mags = res.magnitude("vssi");
    // Reference inductive impedance a decade below the peak.
    std::size_t i_low = 0;
    while (res.frequencies()[i_low] < f0 / 10.0) ++i_low;
    table.add_row({io::si_format(double(n), 2),
                   io::si_format(model.zeta(), 3),
                   core::to_string(model.region()),
                   io::si_format(peak.magnitude, 4),
                   io::si_format(peak.frequency * 1e-9, 3),
                   io::si_format(peak.magnitude / mags[i_low], 3)});
    if (log_f.empty())
      for (double f : res.frequencies()) log_f.push_back(std::log10(f));
    std::vector<double> db = res.magnitude_db("vssi");
    curves.push_back(std::move(db));
    names.push_back("N=" + std::to_string(n));
  }
  std::printf("%s", table.to_string().c_str());

  io::ChartOptions copts;
  copts.title = "|Z(vssi)| [dBOhm] vs log10(f): damping grows with N";
  copts.x_label = "log10 f";
  copts.y_label = "dB";
  std::printf("%s", io::ascii_xy_chart(log_f, curves, names, copts).c_str());

  std::printf(
      "\nreading: with one conducting driver the tank is under-damped and the\n"
      "impedance peaks sharply near f0; by N = 16 the driver transconductance\n"
      "(N*K*lambda, the paper's damping term) has flattened the resonance —\n"
      "the same over/under-damped boundary Table 1 switches formulas on.\n");
  return 0;
}
