// Load generator for the serve daemon (docs/SERVING.md).
//
// Two modes:
//
//   self-hosted (default)  — constructs serve::Server in-process and drives
//     submit_line() directly from M closed-loop client threads (one
//     outstanding request each). Measures the daemon core with zero
//     transport noise; this is what scripts/bench_serve.sh runs.
//   --connect PATH         — connects M Unix-socket clients to an already
//     running `ssnkit serve --socket PATH`, measuring the full stack
//     including the poll loop and socket framing.
//
// The --dup-frac knob replays earlier configurations with that probability,
// so the reported cache hit-rate is controllable: dup-frac 0.5 on a warm
// cache should report roughly 0.5.
//
// Writes BENCH_serve.json (throughput, p50/p95/p99 latency, outcome counts,
// cache hit-rate) through write_file_atomic like the other perf artifacts.
#include "bench_util.hpp"

#include "io/diagnostics.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"
#include "support/atomic_file.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <random>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#ifndef _WIN32
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>
#endif

using namespace ssnkit;

namespace {

struct Options {
  std::string connect;      // socket path; "" = self-hosted
  std::string out = "BENCH_serve.json";
  int clients = 4;          // closed-loop client threads / connections
  int requests = 2000;      // total requests across all clients
  double dup_frac = 0.5;    // probability of replaying an earlier config
  int pool_size = 32;       // distinct configs the replays draw from
  unsigned seed = 12345;
  std::size_t queue = 256;  // self-hosted admission bound
  int threads = 0;          // self-hosted worker threads (0 = auto)
  std::string isolate = "thread";  // self-hosted isolation mode
  bool compare_isolation = false;  // run thread AND process, report overhead
};

[[noreturn]] void usage_and_exit() {
  std::fprintf(
      stderr,
      "usage: bench_serve [--connect PATH] [--clients M] [--requests N]\n"
      "                   [--dup-frac F] [--pool K] [--seed S]\n"
      "                   [--queue Q] [--threads T] [--out FILE]\n"
      "                   [--isolate thread|process] [--compare-isolation]\n"
      "  --isolate / --compare-isolation are self-hosted only; the latter\n"
      "  runs the identical workload in both modes and reports the process-\n"
      "  isolation overhead so the containment cost is measured, not guessed\n");
  std::exit(2);
}

int int_arg(const std::string& token) {
  const io::IntParse parsed = io::parse_int_strict(token);
  if (!parsed.ok) usage_and_exit();
  return parsed.value;
}

double double_arg(const std::string& token) {
  const io::NumberParse parsed = io::parse_double_prefix(token);
  if (!parsed.ok || parsed.consumed != token.size()) usage_and_exit();
  return parsed.value;
}

Options parse_options(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> std::string {
      if (i + 1 >= argc) usage_and_exit();
      return argv[++i];
    };
    if (arg == "--connect") opt.connect = value();
    else if (arg == "--out") opt.out = value();
    else if (arg == "--clients") opt.clients = int_arg(value());
    else if (arg == "--requests") opt.requests = int_arg(value());
    else if (arg == "--dup-frac") opt.dup_frac = double_arg(value());
    else if (arg == "--pool") opt.pool_size = int_arg(value());
    else if (arg == "--seed") opt.seed = static_cast<unsigned>(int_arg(value()));
    else if (arg == "--queue")
      opt.queue = static_cast<std::size_t>(int_arg(value()));
    else if (arg == "--threads") opt.threads = int_arg(value());
    else if (arg == "--isolate") opt.isolate = value();
    else if (arg == "--compare-isolation") opt.compare_isolation = true;
    else usage_and_exit();
  }
  if (opt.clients < 1 || opt.requests < 1 || opt.pool_size < 1 ||
      opt.dup_frac < 0.0 || opt.dup_frac > 1.0)
    usage_and_exit();
  if (opt.isolate != "thread" && opt.isolate != "process") usage_and_exit();
  if ((opt.isolate == "process" || opt.compare_isolation) &&
      !opt.connect.empty())
    usage_and_exit();  // isolation is a server-side choice in --connect mode
  return opt;
}

/// One estimate-request line. Configs are indexed: the same index always
/// renders the same line (minus the id), so replaying an index is a cache
/// hit on the server.
std::string request_line(const std::string& id, int config_index) {
  // Spread n over [1, 32] and tr over three values so distinct indices are
  // genuinely distinct work, not just distinct ids.
  const int n = 1 + config_index % 32;
  static const char* kRiseTimes[] = {"5e-11", "1e-10", "2e-10"};
  const char* tr = kRiseTimes[(config_index / 32) % 3];
  std::ostringstream os;
  os << "{\"id\":\"" << id << "\",\"cmd\":\"estimate\",\"n\":" << n
     << ",\"tr\":" << tr << "}";
  return os.str();
}

struct Tally {
  std::vector<double> latencies_us;  // ok responses only
  long ok = 0;
  long cached = 0;
  long shed = 0;
  long errors = 0;
};

/// Classify one response line by substring — the bench is a client, so it
/// reads the wire format the documented way (docs/SERVING.md) without
/// depending on server internals.
void tally_response(const std::string& line, double latency_us, Tally& t) {
  if (line.find("\"ok\":true") != std::string::npos) {
    ++t.ok;
    t.latencies_us.push_back(latency_us);
    if (line.find("\"cached\":true") != std::string::npos) ++t.cached;
  } else if (line.find("SSN-E064") != std::string::npos) {
    ++t.shed;
  } else {
    ++t.errors;
  }
}

/// Closed-loop client: one outstanding request, next config drawn from the
/// replay pool with probability dup_frac, otherwise fresh.
template <typename SubmitFn>
void run_client(int client_id, int n_requests, const Options& opt,
                SubmitFn&& submit, Tally& tally) {
  std::mt19937 rng(opt.seed + static_cast<unsigned>(client_id) * 7919u);
  std::uniform_real_distribution<double> coin(0.0, 1.0);
  std::uniform_int_distribution<int> pool_pick(0, opt.pool_size - 1);
  int fresh = opt.pool_size + client_id * 100000;  // disjoint fresh ranges
  for (int r = 0; r < n_requests; ++r) {
    const int config = coin(rng) < opt.dup_frac ? pool_pick(rng) : fresh++;
    std::ostringstream id_os;
    id_os << 'c' << client_id << '-' << r;
    const std::string id = id_os.str();
    const auto t0 = std::chrono::steady_clock::now();
    const std::string response = submit(request_line(id, config));
    const double us =
        std::chrono::duration_cast<std::chrono::duration<double, std::micro>>(
            std::chrono::steady_clock::now() - t0)
            .count();
    tally_response(response, us, tally);
  }
}

Tally run_self_hosted(const Options& opt, serve::Server& server) {
  std::vector<Tally> tallies(static_cast<std::size_t>(opt.clients));
  std::vector<std::thread> clients;
  const int per_client = opt.requests / opt.clients;
  const int remainder = opt.requests % opt.clients;
  for (int c = 0; c < opt.clients; ++c) {
    const int n = per_client + (c < remainder ? 1 : 0);
    clients.emplace_back([&, c, n] {
      run_client(c, n, opt,
                 [&](const std::string& line) {
                   // submit_line responds asynchronously from a worker;
                   // block until this request's single response arrives.
                   std::mutex mu;
                   std::condition_variable cv;
                   std::string response;
                   bool done = false;
                   server.submit_line(line, [&](const std::string& resp) {
                     std::lock_guard<std::mutex> lock(mu);
                     response = resp;
                     done = true;
                     cv.notify_one();
                   });
                   std::unique_lock<std::mutex> lock(mu);
                   cv.wait(lock, [&] { return done; });
                   return response;
                 },
                 tallies[static_cast<std::size_t>(c)]);
    });
  }
  for (std::thread& t : clients) t.join();
  Tally total;
  for (const Tally& t : tallies) {
    total.ok += t.ok;
    total.cached += t.cached;
    total.shed += t.shed;
    total.errors += t.errors;
    total.latencies_us.insert(total.latencies_us.end(),
                              t.latencies_us.begin(), t.latencies_us.end());
  }
  return total;
}

#ifndef _WIN32
/// Blocking Unix-socket round trip: write one line, read one line. With one
/// outstanding request per connection every line read is ours.
class SocketClient {
 public:
  explicit SocketClient(const std::string& path) {
    fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd_ < 0) return;
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (path.size() >= sizeof(addr.sun_path)) {
      ::close(fd_);
      fd_ = -1;
      return;
    }
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) != 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }
  ~SocketClient() {
    if (fd_ >= 0) ::close(fd_);
  }
  bool ok() const { return fd_ >= 0; }

  std::string round_trip(const std::string& line) {
    std::string framed = line;
    framed.push_back('\n');
    std::size_t sent = 0;
    while (sent < framed.size()) {
      const ssize_t n =
          ::send(fd_, framed.data() + sent, framed.size() - sent, 0);
      if (n <= 0) return "";
      sent += static_cast<std::size_t>(n);
    }
    for (;;) {
      const std::size_t eol = buf_.find('\n');
      if (eol != std::string::npos) {
        std::string out = buf_.substr(0, eol);
        buf_.erase(0, eol + 1);
        // The daemon may interleave event lines (warnings); skip them and
        // keep reading for the response proper.
        if (out.find("\"event\":") == std::string::npos) return out;
        continue;
      }
      char chunk[4096];
      const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n <= 0) return "";
      buf_.append(chunk, static_cast<std::size_t>(n));
    }
  }

 private:
  int fd_ = -1;
  std::string buf_;
};

Tally run_connected(const Options& opt) {
  std::vector<Tally> tallies(static_cast<std::size_t>(opt.clients));
  std::vector<std::thread> clients;
  std::atomic<bool> connect_failed{false};
  const int per_client = opt.requests / opt.clients;
  const int remainder = opt.requests % opt.clients;
  for (int c = 0; c < opt.clients; ++c) {
    const int n = per_client + (c < remainder ? 1 : 0);
    clients.emplace_back([&, c, n] {
      SocketClient sock(opt.connect);
      if (!sock.ok()) {
        connect_failed.store(true);
        return;
      }
      run_client(c, n, opt,
                 [&](const std::string& line) { return sock.round_trip(line); },
                 tallies[static_cast<std::size_t>(c)]);
    });
  }
  for (std::thread& t : clients) t.join();
  if (connect_failed.load()) {
    std::fprintf(stderr, "bench_serve: could not connect to %s\n",
                 opt.connect.c_str());
    std::exit(1);
  }
  Tally total;
  for (const Tally& t : tallies) {
    total.ok += t.ok;
    total.cached += t.cached;
    total.shed += t.shed;
    total.errors += t.errors;
    total.latencies_us.insert(total.latencies_us.end(),
                              t.latencies_us.begin(), t.latencies_us.end());
  }
  return total;
}
#endif

double percentile(std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const double rank = p * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

}  // namespace

/// One complete self-hosted pass under the given isolation mode, with a
/// fresh server (and so a cold cache) so thread/process comparisons see
/// identical workloads.
Tally run_isolated(const Options& opt, serve::IsolateMode mode,
                   double& elapsed_s) {
  serve::ServerConfig config;
  config.threads = opt.threads;
  config.queue_capacity = opt.queue;
  config.isolate = mode;
  serve::Server server(config);
  const auto t0 = std::chrono::steady_clock::now();
  Tally tally = run_self_hosted(opt, server);
  elapsed_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  const serve::ServerStats stats = server.stats();
  std::printf("server stats: accepted=%llu responded=%llu cache_hits=%llu\n",
              static_cast<unsigned long long>(stats.accepted),
              static_cast<unsigned long long>(stats.responded),
              static_cast<unsigned long long>(stats.cache_hits));
  return tally;
}

double rps(const Tally& t, double elapsed_s) {
  const long answered = t.ok + t.shed + t.errors;
  return elapsed_s > 0.0 ? static_cast<double>(answered) / elapsed_s : 0.0;
}

int main(int argc, char** argv) {
  const Options opt = parse_options(argc, argv);
  benchutil::banner("serve daemon load generator");
  std::printf("mode: %s  clients: %d  requests: %d  dup-frac: %.2f\n",
              opt.connect.empty() ? "self-hosted" : opt.connect.c_str(),
              opt.clients, opt.requests, opt.dup_frac);

  Tally tally;
  double elapsed_s = 0.0;
  // Populated in --compare-isolation mode; the process run doubles as the
  // primary tally because the containment cost is what's being measured.
  double thread_rps = 0.0;
  double process_rps = 0.0;
  double overhead_pct = 0.0;
  if (opt.compare_isolation) {
    benchutil::section("isolation comparison: thread mode");
    double thread_elapsed = 0.0;
    Tally thread_tally =
        run_isolated(opt, serve::IsolateMode::kThread, thread_elapsed);
    thread_rps = rps(thread_tally, thread_elapsed);
    benchutil::section("isolation comparison: process mode");
    tally = run_isolated(opt, serve::IsolateMode::kProcess, elapsed_s);
    process_rps = rps(tally, elapsed_s);
    overhead_pct =
        thread_rps > 0.0 ? (1.0 - process_rps / thread_rps) * 100.0 : 0.0;
    std::printf("thread:  %.0f req/s\nprocess: %.0f req/s\n", thread_rps,
                process_rps);
    std::printf("process-isolation overhead: %.1f%%\n", overhead_pct);
    if (thread_tally.errors > 0) tally.errors += thread_tally.errors;
  } else if (opt.connect.empty()) {
    tally = run_isolated(opt,
                         opt.isolate == "process"
                             ? serve::IsolateMode::kProcess
                             : serve::IsolateMode::kThread,
                         elapsed_s);
  } else {
#ifndef _WIN32
    const auto t0 = std::chrono::steady_clock::now();
    tally = run_connected(opt);
    elapsed_s = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                              t0)
                    .count();
#else
    std::fprintf(stderr, "bench_serve: --connect needs Unix sockets\n");
    return 1;
#endif
  }

  std::sort(tally.latencies_us.begin(), tally.latencies_us.end());
  const double p50 = percentile(tally.latencies_us, 0.50);
  const double p95 = percentile(tally.latencies_us, 0.95);
  const double p99 = percentile(tally.latencies_us, 0.99);
  const long answered = tally.ok + tally.shed + tally.errors;
  const double throughput = elapsed_s > 0.0
                                ? static_cast<double>(answered) / elapsed_s
                                : 0.0;
  const double hit_rate =
      tally.ok > 0 ? static_cast<double>(tally.cached) /
                         static_cast<double>(tally.ok)
                   : 0.0;

  benchutil::section("results");
  std::printf("answered:   %ld (ok %ld, shed %ld, errors %ld)\n", answered,
              tally.ok, tally.shed, tally.errors);
  std::printf("elapsed:    %.3f s  (%.0f req/s)\n", elapsed_s, throughput);
  std::printf("latency us: p50 %.0f  p95 %.0f  p99 %.0f\n", p50, p95, p99);
  std::printf("cache hits: %ld / %ld ok (%.1f%%)\n", tally.cached, tally.ok,
              benchutil::pct(hit_rate));

  std::ostringstream json;
  json << "{\n"
       << "  \"mode\": \"" << (opt.connect.empty() ? "self-hosted" : "socket")
       << "\",\n"
       << "  \"isolate\": \""
       << (opt.compare_isolation ? "compare" : opt.isolate) << "\",\n";
  if (opt.compare_isolation)
    json << "  \"thread_rps\": " << thread_rps << ",\n"
         << "  \"process_rps\": " << process_rps << ",\n"
         << "  \"isolation_overhead_pct\": " << overhead_pct << ",\n";
  json << "  \"clients\": " << opt.clients << ",\n"
       << "  \"requests\": " << opt.requests << ",\n"
       << "  \"dup_frac\": " << opt.dup_frac << ",\n"
       << "  \"answered\": " << answered << ",\n"
       << "  \"ok\": " << tally.ok << ",\n"
       << "  \"shed\": " << tally.shed << ",\n"
       << "  \"errors\": " << tally.errors << ",\n"
       << "  \"elapsed_s\": " << elapsed_s << ",\n"
       << "  \"throughput_rps\": " << throughput << ",\n"
       << "  \"latency_p50_us\": " << p50 << ",\n"
       << "  \"latency_p95_us\": " << p95 << ",\n"
       << "  \"latency_p99_us\": " << p99 << ",\n"
       << "  \"cache_hit_rate\": " << hit_rate << "\n"
       << "}\n";
  support::write_file_atomic(opt.out, json.str());
  std::printf("\nwrote %s\n", opt.out.c_str());
  return tally.errors > 0 ? 1 : 0;
}
