// Performance microbenchmarks (google-benchmark): the cost profile that
// makes the paper's closed forms attractive — a Table 1 evaluation is
// nanoseconds while a single transient simulation is milliseconds.
#include "analysis/calibrate.hpp"
#include "analysis/measure.hpp"
#include "core/baselines.hpp"
#include "core/l_only_model.hpp"
#include "core/lc_model.hpp"
#include "devices/fit.hpp"
#include "numeric/lu.hpp"
#include "sim/engine.hpp"

#include <benchmark/benchmark.h>

#include <random>

using namespace ssnkit;

namespace {

core::SsnScenario scenario_for(int n, double c_mult) {
  core::SsnScenario s;
  s.n_drivers = n;
  s.inductance = 5e-9;
  s.vdd = 1.8;
  s.slope = 1.8e10;
  s.device = {.k = 5.3e-3, .lambda = 1.17, .vx = 0.56};
  s.capacitance = s.critical_capacitance() * c_mult;
  return s;
}

void BM_LOnlyVmax(benchmark::State& state) {
  const auto s = scenario_for(8, 0.0).with_capacitance(0.0);
  for (auto _ : state) {
    core::LOnlyModel m(s);
    benchmark::DoNotOptimize(m.v_max());
  }
}
BENCHMARK(BM_LOnlyVmax);

void BM_LcVmax(benchmark::State& state) {
  const auto s = scenario_for(8, double(state.range(0)) / 10.0);
  for (auto _ : state) {
    core::LcModel m(s);
    benchmark::DoNotOptimize(m.v_max());
  }
}
BENCHMARK(BM_LcVmax)->Arg(3)->Arg(10)->Arg(40);  // over/critical/under damped

void BM_BaselineVemuru(benchmark::State& state) {
  core::BaselineInputs in;
  in.n_drivers = 8;
  in.inductance = 5e-9;
  in.slope = 1.8e10;
  in.vdd = 1.8;
  in.b = 4.4e-3;
  in.vt = 0.45;
  in.alpha = 1.3;
  for (auto _ : state) benchmark::DoNotOptimize(core::vemuru_vmax(in));
}
BENCHMARK(BM_BaselineVemuru);

void BM_AsdmFit(benchmark::State& state) {
  const auto tech = process::tech_180nm();
  const auto golden = tech.make_golden();
  devices::AsdmFitRegion region;
  region.vd = tech.vdd;
  region.vg_lo = 0.45 * tech.vdd;
  region.vg_hi = tech.vdd;
  region.vs_hi = 0.45 * tech.vdd;
  for (auto _ : state)
    benchmark::DoNotOptimize(devices::fit_asdm(*golden, region));
}
BENCHMARK(BM_AsdmFit);

void BM_LuSolve(benchmark::State& state) {
  const std::size_t n = std::size_t(state.range(0));
  std::mt19937 rng(7);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  numeric::Matrix a(n, n);
  numeric::Vector b(n);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < n; ++c) a(r, c) = dist(rng);
    a(r, r) += 4.0;
    b[r] = dist(rng);
  }
  for (auto _ : state) {
    numeric::LuFactorization lu(a);
    benchmark::DoNotOptimize(lu.solve(b));
  }
  state.SetComplexityN(int64_t(n));
}
BENCHMARK(BM_LuSolve)->Arg(8)->Arg(32)->Arg(128)->Complexity(benchmark::oNCubed);

void BM_SsnTransient(benchmark::State& state) {
  const auto cal = analysis::calibrate(process::tech_180nm());
  for (auto _ : state) {
    circuit::SsnBenchSpec spec;
    spec.tech = cal.tech;
    spec.n_drivers = int(state.range(0));
    spec.input_rise_time = 0.1e-9;
    benchmark::DoNotOptimize(analysis::measure_ssn(spec).v_max);
  }
}
BENCHMARK(BM_SsnTransient)->Arg(2)->Arg(8)->Unit(benchmark::kMillisecond);

void BM_DcOperatingPoint(benchmark::State& state) {
  const auto cal = analysis::calibrate(process::tech_180nm());
  circuit::SsnBenchSpec spec;
  spec.tech = cal.tech;
  spec.n_drivers = 8;
  auto bench = circuit::make_ssn_testbench(spec);
  for (auto _ : state)
    benchmark::DoNotOptimize(sim::dc_operating_point(bench.circuit));
}
BENCHMARK(BM_DcOperatingPoint)->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
