// Performance microbenchmarks (google-benchmark): the cost profile that
// makes the paper's closed forms attractive — a Table 1 evaluation is
// nanoseconds while a single transient simulation is milliseconds — plus
// the solver hot-path suite (sparse stamping vs the old dense assembly,
// transient solves at several sizes, Monte Carlo batches at several thread
// counts). scripts/bench.sh runs this binary and emits BENCH_perf.json.
#include "analysis/calibrate.hpp"
#include "analysis/measure.hpp"
#include "analysis/montecarlo.hpp"
#include "core/baselines.hpp"
#include "core/l_only_model.hpp"
#include "core/lc_model.hpp"
#include "circuit/mna.hpp"
#include "circuit/testbench.hpp"
#include "devices/fit.hpp"
#include "numeric/lu.hpp"
#include "numeric/sparse.hpp"
#include "sim/engine.hpp"

#include <benchmark/benchmark.h>

#include <random>

using namespace ssnkit;

namespace {

core::SsnScenario scenario_for(int n, double c_mult) {
  core::SsnScenario s;
  s.n_drivers = n;
  s.inductance = 5e-9;
  s.vdd = 1.8;
  s.slope = 1.8e10;
  s.device = {.k = 5.3e-3, .lambda = 1.17, .vx = 0.56};
  s.capacitance = s.critical_capacitance() * c_mult;
  return s;
}

void BM_LOnlyVmax(benchmark::State& state) {
  const auto s = scenario_for(8, 0.0).with_capacitance(0.0);
  for (auto _ : state) {
    core::LOnlyModel m(s);
    benchmark::DoNotOptimize(m.v_max());
  }
}
BENCHMARK(BM_LOnlyVmax);

void BM_LcVmax(benchmark::State& state) {
  const auto s = scenario_for(8, double(state.range(0)) / 10.0);
  for (auto _ : state) {
    core::LcModel m(s);
    benchmark::DoNotOptimize(m.v_max());
  }
}
BENCHMARK(BM_LcVmax)->Arg(3)->Arg(10)->Arg(40);  // over/critical/under damped

void BM_BaselineVemuru(benchmark::State& state) {
  core::BaselineInputs in;
  in.n_drivers = 8;
  in.inductance = 5e-9;
  in.slope = 1.8e10;
  in.vdd = 1.8;
  in.b = 4.4e-3;
  in.vt = 0.45;
  in.alpha = 1.3;
  for (auto _ : state) benchmark::DoNotOptimize(core::vemuru_vmax(in));
}
BENCHMARK(BM_BaselineVemuru);

void BM_AsdmFit(benchmark::State& state) {
  const auto tech = process::tech_180nm();
  const auto golden = tech.make_golden();
  devices::AsdmFitRegion region;
  region.vd = tech.vdd;
  region.vg_lo = 0.45 * tech.vdd;
  region.vg_hi = tech.vdd;
  region.vs_hi = 0.45 * tech.vdd;
  for (auto _ : state)
    benchmark::DoNotOptimize(devices::fit_asdm(*golden, region));
}
BENCHMARK(BM_AsdmFit);

void BM_LuSolve(benchmark::State& state) {
  const std::size_t n = std::size_t(state.range(0));
  std::mt19937 rng(7);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  numeric::Matrix a(n, n);
  numeric::Vector b(n);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < n; ++c) a(r, c) = dist(rng);
    a(r, r) += 4.0;
    b[r] = dist(rng);
  }
  for (auto _ : state) {
    numeric::LuFactorization lu(a);
    benchmark::DoNotOptimize(lu.solve(b));
  }
  state.SetComplexityN(int64_t(n));
}
BENCHMARK(BM_LuSolve)->Arg(8)->Arg(32)->Arg(128)->Complexity(benchmark::oNCubed);

void BM_SsnTransient(benchmark::State& state) {
  const auto cal = analysis::calibrate(process::tech_180nm());
  for (auto _ : state) {
    circuit::SsnBenchSpec spec;
    spec.tech = cal.tech;
    spec.n_drivers = int(state.range(0));
    spec.input_rise_time = 0.1e-9;
    benchmark::DoNotOptimize(analysis::measure_ssn(spec).v_max);  // ssnlint-ignore(SSN-L013)
  }
}
BENCHMARK(BM_SsnTransient)->Arg(2)->Arg(8)->Arg(24)->Arg(48)->Unit(benchmark::kMillisecond);

// Trust-layer overhead: the same transient with the per-step residual
// check + per-epoch condition estimate disabled. The acceptance bar is
// BM_SsnTransient/N within 5% of BM_SsnTransientUnverified/N — the checks
// reuse the step's own CSR arrays, so the delta should be noise-level.
void BM_SsnTransientUnverified(benchmark::State& state) {
  const auto cal = analysis::calibrate(process::tech_180nm());
  for (auto _ : state) {
    circuit::SsnBenchSpec spec;
    spec.tech = cal.tech;
    spec.n_drivers = int(state.range(0));
    spec.input_rise_time = 0.1e-9;
    analysis::MeasureOptions mo;
    mo.transient.verify.enabled = false;
    benchmark::DoNotOptimize(analysis::measure_ssn(spec, mo).v_max);  // ssnlint-ignore(SSN-L013)
  }
}
BENCHMARK(BM_SsnTransientUnverified)
    ->Arg(8)
    ->Arg(24)
    ->Arg(48)
    ->Unit(benchmark::kMillisecond);

// --- solver hot path: one Newton iteration's linear-algebra cost ----------
//
// Dense is the pre-stamped-workspace path: zero an n*n matrix, stamp,
// convert to CSR, run a full sparse LU (fresh symbolic analysis + pivoting)
// and solve. Sparse is the engine's current path: stamp into the cached
// CSR pattern and numerically refactorize on the frozen pivot order. The
// ratio of these two is the per-iteration speedup of the rewrite.

struct AssemblyFixture {
  circuit::SsnBench bench;
  numeric::Vector x;  ///< DC solution: a realistic stamping point
  std::size_t n = 0;

  explicit AssemblyFixture(int n_drivers)
      : bench([&] {
          circuit::SsnBenchSpec spec;
          spec.n_drivers = n_drivers;
          return circuit::make_ssn_testbench(spec);
        }()) {
    x = sim::dc_operating_point(bench.circuit).solution;
    n = std::size_t(bench.circuit.unknown_count());
  }
};

void BM_MnaAssemblyDense(benchmark::State& state) {
  AssemblyFixture fx(int(state.range(0)));
  numeric::Matrix a(fx.n, fx.n);
  numeric::Vector b(fx.n);
  for (auto _ : state) {
    a.fill(0.0);
    b.fill(0.0);
    circuit::StampContext ctx;
    ctx.mode = circuit::AnalysisMode::kDc;
    ctx.x = &fx.x;
    ctx.a = &a;
    ctx.b = &b;
    for (const auto& el : fx.bench.circuit.elements()) el->stamp(ctx);
    numeric::SparseLu lu(numeric::SparseMatrix::from_dense(a));
    benchmark::DoNotOptimize(lu.solve(b));
  }
}
BENCHMARK(BM_MnaAssemblyDense)
    ->Arg(4)
    ->Arg(12)
    ->Arg(24)
    ->Unit(benchmark::kMicrosecond);

void BM_MnaAssemblySparse(benchmark::State& state) {
  AssemblyFixture fx(int(state.range(0)));
  numeric::StampedMatrix sm;
  numeric::Vector b(fx.n);
  numeric::Vector x_out(fx.n);
  circuit::StampContext ctx;
  ctx.mode = circuit::AnalysisMode::kDc;
  ctx.x = &fx.x;
  ctx.sa = &sm;
  ctx.b = &b;
  // Pattern discovery + symbolic analysis: once, outside the timed loop —
  // exactly as the engine amortizes them across Newton iterations.
  sm.begin_pattern(fx.n);
  for (const auto& el : fx.bench.circuit.elements()) el->stamp(ctx);
  sm.finalize_pattern();
  numeric::SparseFactor factor;
  factor.factorize(sm);
  for (auto _ : state) {
    sm.clear();
    b.fill(0.0);
    for (const auto& el : fx.bench.circuit.elements()) el->stamp(ctx);
    factor.refactorize(sm);
    factor.solve(b, x_out);
    benchmark::DoNotOptimize(x_out);
  }
}
BENCHMARK(BM_MnaAssemblySparse)
    ->Arg(4)
    ->Arg(12)
    ->Arg(24)
    ->Unit(benchmark::kMicrosecond);

// --- batch runner: Monte Carlo at several sample/thread counts ------------

void BM_McClosedForm(benchmark::State& state) {
  const auto s = scenario_for(8, 1.0);
  analysis::MonteCarloOptions opts;
  opts.samples = int(state.range(0));
  opts.threads = int(state.range(1));
  for (auto _ : state)
    benchmark::DoNotOptimize(analysis::monte_carlo_vmax(s, opts));
}
BENCHMARK(BM_McClosedForm)
    ->Args({20000, 1})
    ->Args({20000, 2})
    ->Args({20000, 4})
    ->Unit(benchmark::kMillisecond);

void BM_McSimBatch(benchmark::State& state) {
  const auto cal = analysis::calibrate(process::tech_180nm());
  analysis::SimMonteCarloOptions opts;
  opts.samples = int(state.range(0));
  opts.threads = int(state.range(1));
  for (auto _ : state)
    benchmark::DoNotOptimize(analysis::monte_carlo_vmax_sim(
        cal, process::package_pga(), 4, 0.1e-9, true, opts));
}
BENCHMARK(BM_McSimBatch)
    ->Args({4, 1})
    ->Args({4, 2})
    ->Args({8, 1})
    ->Args({8, 4})
    ->Unit(benchmark::kMillisecond);

void BM_DcOperatingPoint(benchmark::State& state) {
  const auto cal = analysis::calibrate(process::tech_180nm());
  circuit::SsnBenchSpec spec;
  spec.tech = cal.tech;
  spec.n_drivers = 8;
  auto bench = circuit::make_ssn_testbench(spec);
  for (auto _ : state)
    benchmark::DoNotOptimize(sim::dc_operating_point(bench.circuit));
}
BENCHMARK(BM_DcOperatingPoint)->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
