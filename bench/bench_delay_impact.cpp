// Extension bench: SSN "decreases the effective driving strength of the
// circuits" (paper, Section 1). The bouncing source robs the pull-down of
// gate overdrive (lambda*V_n of it, per the ASDM), so the same driver
// discharging the same load gets slower as more neighbours switch with it.
// This bench measures the 50%-crossing delay of one output versus N and
// compares against a first-order model estimate built from Eqn 8.
#include "bench_util.hpp"

#include "analysis/calibrate.hpp"
#include "analysis/measure.hpp"
#include "core/l_only_model.hpp"
#include "io/table.hpp"
#include "waveform/metrics.hpp"

#include <cstdio>

using namespace ssnkit;

int main() {
  benchutil::banner(
      "Extension: driver delay degradation under simultaneous switching");

  const auto cal = analysis::calibrate(process::tech_180nm());
  const double t_rise = 0.1e-9;
  const double v_half = 0.5 * cal.tech.vdd;

  io::TextTable table({"N", "sim 50% delay [ps]", "vs N=1 [ps]",
                       "sim delay ratio", "model V_max [V]"});
  double delay_ref = 0.0;
  for (int n : {1, 2, 4, 8, 16}) {
    circuit::SsnBenchSpec spec;
    spec.tech = cal.tech;
    spec.n_drivers = n;
    spec.input_rise_time = t_rise;
    analysis::MeasureOptions mopts;
    mopts.overshoot_factor = 30.0;  // follow the output all the way down
    const auto m = analysis::measure_ssn(spec, mopts);  // ssnlint-ignore(SSN-L013)

    const auto cross = waveform::first_falling_crossing(m.vout, v_half);
    const double delay = cross.value_or(0.0);

    // Model-side context: the predicted peak bounce. The overdrive loss
    // lambda*V_n during the bounce is what stretches the early discharge;
    // the 50% delay grows monotonically with it.
    const auto scenario =
        analysis::make_scenario(cal, spec.package, n, t_rise, false);
    const double v_max = core::LOnlyModel(scenario).v_max();
    if (n == 1) delay_ref = delay;
    table.add_row(
        {io::si_format(double(n), 2), io::si_format(delay * 1e12, 4),
         io::si_format((delay - delay_ref) * 1e12, 4),
         io::si_format(delay_ref > 0.0 ? delay / delay_ref : 1.0, 4),
         io::si_format(v_max, 4)});
  }
  std::printf("%s", table.to_string().c_str());

  std::printf(
      "\nreading: the 50%% delay stretches monotonically with the predicted\n"
      "bounce (lambda*V_n of gate overdrive is lost while the ground rings) —\n"
      "the delay-degradation face of SSN that motivates the paper's accurate\n"
      "V_max estimates.\n");
  return 0;
}
