// Reproduces Fig. 4 of the paper: maximum SSN voltage and relative error vs
// the ground-pad parasitic capacitance.
//   (a)/(c): the paper's base package, L = 5 nH.
//   (b)/(d): ground pads doubled -> L halved, C doubled.
// Claims reproduced: the L-only model is adequate in the over/critically
// damped region but fails under-damped; the full LC model (Table 1) stays
// within a few percent everywhere; the boundary sits at
// C_crit = (N*K*lambda)^2*L/4.
#include "bench_util.hpp"

#include "analysis/sweeps.hpp"
#include "core/lc_model.hpp"
#include "io/ascii_chart.hpp"
#include "io/csv.hpp"
#include "io/table.hpp"

#include <cmath>
#include <cstdio>

using namespace ssnkit;

namespace {

void run_for(const process::Package& package, const char* label,
             const char* suffix) {
  benchutil::section(label);

  analysis::CapacitanceSweepConfig config;
  config.package = package;
  config.n_drivers = 8;
  config.input_rise_time = 0.1e-9;
  // Log sweep around the critical capacitance.
  const auto probe = analysis::calibrate(config.tech);
  const auto base = analysis::make_scenario(probe, package, config.n_drivers,
                                            config.input_rise_time, false);
  const double c_crit = base.critical_capacitance();
  for (double mult : {0.05, 0.1, 0.2, 0.4, 0.7, 1.0, 1.5, 2.5, 4.0, 8.0, 16.0})
    config.capacitances.push_back(c_crit * mult);

  const auto result = analysis::run_capacitance_sweep(config);
  std::printf("L = %s H;  C_crit = %s F (Eqn 27)\n",
              io::si_format(package.inductance).c_str(),
              io::si_format(result.critical_capacitance).c_str());

  io::TextTable table({"C [pF]", "C/C_crit", "zeta", "region/case", "sim [V]",
                       "LC model [V]", "err% (d)", "L-only [V]", "err% (c)"});
  std::vector<double> xs, y_err_lc, y_err_lonly;
  double max_err_lc = 0.0;
  for (const auto& r : result.rows) {
    table.add_row({io::si_format(r.c * 1e12, 3),
                   io::si_format(r.c / result.critical_capacitance, 3),
                   io::si_format(r.zeta, 3), core::to_string(r.lc_case),
                   io::si_format(r.sim, 4), io::si_format(r.lc_model, 4),
                   io::si_format(benchutil::pct(r.err_lc), 3),
                   io::si_format(r.l_only, 4),
                   io::si_format(benchutil::pct(r.err_l_only), 3)});
    xs.push_back(std::log10(r.c));
    y_err_lc.push_back(benchutil::pct(r.err_lc));
    y_err_lonly.push_back(benchutil::pct(r.err_l_only));
    max_err_lc = std::max(max_err_lc, r.err_lc);
  }
  std::printf("%s", table.to_string().c_str());

  std::printf("\nLC-model worst error over the sweep: %.2f %% "
              "(paper claims < 3 %% on their testbed)\n",
              benchutil::pct(max_err_lc));

  io::ChartOptions copts;
  copts.title = std::string("Fig.4 rel. error [%] vs log10(C)  ") + label;
  copts.x_label = "log10 C";
  copts.y_label = "err %";
  std::printf("%s", io::ascii_xy_chart(xs, {y_err_lc, y_err_lonly},
                                       {"LC model", "L-only"}, copts)
                        .c_str());

  io::CsvWriter csv({"c", "zeta", "sim", "lc_model", "l_only", "err_lc",
                     "err_l_only"});
  for (const auto& r : result.rows)
    csv.add_row({r.c, r.zeta, r.sim, r.lc_model, r.l_only, r.err_lc,
                 r.err_l_only});
  const std::string path = std::string("fig4_capacitance_") + suffix + ".csv";
  csv.write_file(path);
  std::printf("wrote %s\n", path.c_str());
}

}  // namespace

int main() {
  benchutil::banner("Fig. 4 reproduction: max SSN and error vs pad capacitance");
  run_for(process::package_pga(), "(a)/(c)  PGA: L = 5 nH", "a");
  run_for(process::package_pga().with_ground_pads(2),
          "(b)/(d)  doubled ground pads: L = 2.5 nH, C base doubled", "b");
  return 0;
}
