// Reproduces the paper's Section 3 design observation (Eqns 9-10): the
// maximum SSN depends on the circuit only through beta = N*L*S, so trading
// driver count, inductance and input slope against each other at constant
// beta leaves V_max unchanged. Verified exactly on the closed form and
// approximately on the simulator.
#include "bench_util.hpp"

#include "analysis/measure.hpp"
#include "analysis/sweeps.hpp"
#include "io/table.hpp"

#include <cstdio>

using namespace ssnkit;

int main() {
  benchutil::banner("Beta-equivalence (Eqn 9/10): V_max depends only on N*L*S");

  const auto cal = analysis::calibrate(process::tech_180nm());
  const double beta = 8.0 * 5e-9 * (cal.tech.vdd / 0.1e-9);

  const auto pts = analysis::beta_equivalence_points(cal, beta,
                                                     {1, 2, 4, 8, 16}, 0.1e-9);

  io::TextTable table({"N", "L [nH]", "S [V/ns]", "beta", "model V_max [V]",
                       "sim V_max [V]"});
  for (const auto& p : pts) {
    // Cross-check with the simulator (golden device, so a few % device-fit
    // spread on top of the exact model equality).
    circuit::SsnBenchSpec spec;
    spec.tech = cal.tech;
    spec.n_drivers = p.n;
    spec.input_rise_time = cal.tech.vdd / p.slope;
    spec.package.inductance = p.l;
    spec.include_package_c = false;
    const double v_sim = analysis::measure_ssn(spec).v_max;  // ssnlint-ignore(SSN-L013)
    table.add_row({double(p.n), p.l * 1e9, p.slope * 1e-9, p.beta, p.v_max,
                   v_sim},
                  5);
  }
  std::printf("%s", table.to_string().c_str());

  std::printf("\nmodel column is constant by construction (exact in the "
              "formula); simulator column shows the same value within the\n"
              "device-fit error, confirming the design rule: halving the "
              "switching drivers buys exactly a doubling of allowed slope.\n");
  return 0;
}
