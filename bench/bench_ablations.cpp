// Ablations of the reproduction's modeling choices (see DESIGN.md):
//
//  1. NMOS bulk tie. The paper's lambda > 1 comes from the body effect of
//     the source bouncing above the bulk. Tie the bulk to the bouncing
//     rail instead (no V_SB ever develops) and the fitted lambda collapses
//     to ~1 — demonstrating where lambda physically comes from.
//  2. Pull-up device. The closed forms ignore the PMOS crowbar current;
//     simulating with and without it bounds that error.
//  3. Golden device family. The ASDM fit and the end-to-end accuracy barely
//     care whether the golden surface is the alpha-power law or the
//     velocity-saturation BSIM-lite — the point of application-specific
//     fitting.
#include "bench_util.hpp"

#include "analysis/calibrate.hpp"
#include "analysis/measure.hpp"
#include "core/l_only_model.hpp"
#include "devices/fit.hpp"
#include "io/table.hpp"
#include "numeric/stats.hpp"

#include <cstdio>

using namespace ssnkit;

namespace {

double model_vs_sim_error(const analysis::Calibration& cal, bool pullup,
                          bool bulk_to_vssi) {
  circuit::SsnBenchSpec spec;
  spec.tech = cal.tech;
  spec.n_drivers = 8;
  spec.input_rise_time = 0.1e-9;
  spec.include_package_c = false;
  spec.include_pullup = pullup;
  spec.bulk_to_vssi = bulk_to_vssi;
  spec.golden = cal.golden;
  const double v_sim = analysis::measure_ssn(spec).v_max;  // ssnlint-ignore(SSN-L013)
  const auto scenario =
      analysis::make_scenario(cal, process::package_pga(), 8, 0.1e-9, false);
  return numeric::relative_error(core::LOnlyModel(scenario).v_max(), v_sim);
}

}  // namespace

int main() {
  benchutil::banner("Ablations: where lambda comes from, crowbar, golden choice");

  // 1. Bulk tie vs fitted lambda. Refit with the source-referenced bulk:
  // vbs = 0 at every sample (bulk follows the source).
  benchutil::section("1. bulk tie -> fitted lambda");
  {
    const auto tech = process::tech_180nm();
    const auto golden = tech.make_golden();
    devices::AsdmFitRegion region;
    region.vd = tech.vdd;
    region.vg_lo = 0.45 * tech.vdd;
    region.vg_hi = tech.vdd;
    region.vs_hi = 0.45 * tech.vdd;
    const auto fit_quiet_bulk = devices::fit_asdm(*golden, region);

    // Bulk tied to the source: sample the same region with vbs = 0.
    class BulkFollowsSource final : public devices::MosfetModel {
     public:
      explicit BulkFollowsSource(const devices::MosfetModel& inner)
          : inner_(inner) {}
      double ids(double vgs, double vds, double) const override {
        return inner_.ids(vgs, vds, 0.0);
      }
      std::unique_ptr<devices::MosfetModel> clone() const override {
        return std::make_unique<BulkFollowsSource>(inner_);
      }

     private:
      const devices::MosfetModel& inner_;
    } tied(*golden);
    const auto fit_tied_bulk = devices::fit_asdm(tied, region);

    io::TextTable t({"bulk tie", "fitted K [mA/V]", "fitted lambda",
                     "fitted V_x [V]"});
    t.add_row({std::string("true ground (paper)"),
               io::si_format(fit_quiet_bulk.params.k * 1e3, 4),
               io::si_format(fit_quiet_bulk.params.lambda, 4),
               io::si_format(fit_quiet_bulk.params.vx, 4)});
    t.add_row({std::string("bouncing rail (no V_SB)"),
               io::si_format(fit_tied_bulk.params.k * 1e3, 4),
               io::si_format(fit_tied_bulk.params.lambda, 4),
               io::si_format(fit_tied_bulk.params.vx, 4)});
    std::printf("%s", t.to_string().c_str());
    std::printf("-> lambda > 1 is the body effect of the bouncing source; "
                "without it the ASDM degenerates to the lambda = 1 family "
                "(Vemuru's assumption).\n");
  }

  // 2 + 3. Pull-up and golden-family ablations on the end-to-end error.
  benchutil::section("2/3. model-vs-simulator V_max error (N = 8, L-only)");
  io::TextTable t({"golden device", "pull-up", "fitted lambda",
                   "model vs sim err %"});
  for (auto kind : {process::GoldenKind::kAlphaPower,
                    process::GoldenKind::kBsimLite}) {
    const auto cal = analysis::calibrate(process::tech_180nm(), kind);
    const char* kind_name =
        kind == process::GoldenKind::kAlphaPower ? "alpha-power" : "bsim-lite";
    for (bool pullup : {true, false}) {
      t.add_row({kind_name, pullup ? "inverter (crowbar)" : "bare pull-down",
                 io::si_format(cal.asdm.params.lambda, 4),
                 io::si_format(
                     benchutil::pct(model_vs_sim_error(cal, pullup, false)),
                     3)});
    }
  }
  std::printf("%s", t.to_string().c_str());
  std::printf(
      "\n-> the closed form holds within ~1 %% regardless of the golden\n"
      "family, and the untracked PMOS crowbar is indistinguishable at these\n"
      "edge rates — the paper's pull-down-only model is sound.\n");
  return 0;
}
