// Reproduces Fig. 2 of the paper: time-domain comparison of the closed-form
// L-only model (Eqns 6 and 8) against the transient simulator for the
// typical case (8 drivers, L = 5 nH, 0.1 ns input rise).
//   (a) simulated waveforms V_IN, V_OUT, V_n
//   (b) simulated vs modeled SSN voltage
//   (c) simulated vs modeled current through the ground inductor
#include "bench_util.hpp"

#include "analysis/calibrate.hpp"
#include "analysis/measure.hpp"
#include "core/l_only_model.hpp"
#include "waveform/render.hpp"
#include "io/csv.hpp"
#include "io/table.hpp"
#include "waveform/metrics.hpp"

#include <cstdio>

using namespace ssnkit;

int main() {
  benchutil::banner("Fig. 2 reproduction: SSN waveforms, model vs simulator");

  const auto cal = analysis::calibrate(process::tech_180nm());
  const int n_drivers = 8;
  const double t_rise = 0.1e-9;

  std::printf("setup: N = %d, L = 5 nH, t_r = 0.1 ns (S = %.3g V/ns), "
              "vdd = %.2g V, ASDM K = %.4g, lambda = %.3f, V_x = %.3f\n",
              n_drivers, cal.tech.vdd / t_rise * 1e-9, cal.tech.vdd,
              cal.asdm.params.k, cal.asdm.params.lambda, cal.asdm.params.vx);

  circuit::SsnBenchSpec spec;
  spec.tech = cal.tech;
  spec.n_drivers = n_drivers;
  spec.input_rise_time = t_rise;
  spec.include_package_c = false;  // Section 3 configuration
  analysis::MeasureOptions mopts;
  mopts.overshoot_factor = 2.0;  // show the tail past the ramp
  const auto sim = analysis::measure_ssn(spec, mopts);

  const auto scenario =
      analysis::make_scenario(cal, process::package_pga(), n_drivers, t_rise,
                              /*include_c=*/false);
  const core::LOnlyModel model(scenario);

  // (a) raw simulated waveforms.
  benchutil::section("(a) simulated waveforms");
  io::ChartOptions copts;
  copts.title = "Fig.2a  V_IN, V_OUT, V_n(vssi) [V] vs t [s]";
  copts.y_label = "V";
  std::printf("%s", waveform::ascii_chart({&sim.vin, &sim.vout, &sim.vssi},
                                    {"V_IN", "V_OUT", "V_n"}, copts)
                        .c_str());

  // (b) SSN voltage: model vs simulator during the ramp.
  benchutil::section("(b) SSN voltage: model vs simulator");
  const auto model_vn = model.vn_waveform(512);
  copts.title = "Fig.2b  V_n [V]: model (Eqn 6) vs simulator";
  const auto sim_vn_window = sim.vssi.windowed(0.0, t_rise);
  std::printf("%s", waveform::ascii_chart({&sim_vn_window, &model_vn},
                                    {"simulated", "model"}, copts)
                        .c_str());
  const auto err_v =
      waveform::compare(model_vn, sim.vssi, scenario.t_on(), t_rise);
  io::TextTable vt({"metric", "value"});
  vt.add_row({std::string("simulated V_max [V]"),
              std::to_string(sim.v_max)});
  vt.add_row({std::string("model V_max (Eqn 7) [V]"),
              std::to_string(model.v_max())});
  vt.add_row({std::string("peak error [%]"),
              std::to_string(benchutil::pct(err_v.peak_rel))});
  vt.add_row({std::string("max pointwise error [% of peak]"),
              std::to_string(benchutil::pct(err_v.norm_max_abs))});
  std::printf("%s", vt.to_string().c_str());

  // (c) inductor current: model vs simulator.
  benchutil::section("(c) inductor current: model vs simulator");
  const auto model_il = model.current_waveform(512);
  const auto sim_il_window = sim.i_l.windowed(0.0, t_rise);
  copts.title = "Fig.2c  I_L [A]: model (Eqn 8 x N) vs simulator";
  copts.y_label = "I";
  std::printf("%s", waveform::ascii_chart({&sim_il_window, &model_il},
                                    {"simulated", "model"}, copts)
                        .c_str());
  const auto err_i =
      waveform::compare(model_il, sim.i_l, scenario.t_on(), t_rise);
  std::printf("current: sim peak = %s A, model peak = %s A, "
              "max pointwise error = %.2f %% of peak\n",
              io::si_format(sim.i_l.maximum_in(0.0, t_rise).value).c_str(),
              io::si_format(model_il.maximum().value).c_str(),
              benchutil::pct(err_i.norm_max_abs));

  // Data export for external plotting.
  io::CsvWriter csv({"t", "sim_vn", "model_vn", "sim_il", "model_il"});
  for (std::size_t i = 0; i < sim_vn_window.size(); ++i) {
    const double t = sim_vn_window.time(i);
    csv.add_row({t, sim_vn_window.value(i), model_vn.sample(t),
                 sim.i_l.sample(t), model_il.sample(t)});
  }
  csv.write_file("fig2_waveforms.csv");
  std::printf("\nwrote fig2_waveforms.csv (%zu rows)\n", csv.row_count());

  std::printf("\nsolver: %zu steps (%zu rejected), %zu Newton iterations\n",
              sim.stats.accepted_steps, sim.stats.rejected_steps,
              sim.stats.newton_iterations);
  return 0;
}
