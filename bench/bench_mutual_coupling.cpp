// Extension bench: mutual inductance between parallel ground pins.
//
// The paper treats the ground return as one isolated inductor. Real
// packages route multiple ground pins side by side, and their magnetic
// coupling k makes two parallel pins behave as L_eff = L(1+k)/2 instead of
// L/2 — eroding the benefit of adding pins. This bench simulates an
// 8-driver bank on two coupled pins and shows the paper's closed form
// (Eqn 7) still predicts the bounce once L_eff is used.
#include "bench_util.hpp"

#include "analysis/calibrate.hpp"
#include "core/l_only_model.hpp"
#include "io/table.hpp"
#include "numeric/stats.hpp"
#include "sim/engine.hpp"

#include <cstdio>

using namespace ssnkit;
using namespace ssnkit::circuit;

namespace {

double simulate_with_coupling(const analysis::Calibration& cal, double l_pin,
                              double k, int n_drivers, double t_rise) {
  Circuit ckt;
  const auto& tech = cal.tech;
  const NodeId n_vdd = ckt.node("vdd");
  const NodeId n_vssi = ckt.node("vssi");
  ckt.add_vsource("Vdd", n_vdd, kGround, waveform::Dc{tech.vdd});

  // Two ground pins from vssi to the board ground; tiny per-pin series
  // resistances keep the DC point well-posed.
  const NodeId pa = ckt.node("pin_a");
  const NodeId pb = ckt.node("pin_b");
  ckt.add_resistor("Rpa", n_vssi, pa, 5e-3);
  ckt.add_resistor("Rpb", n_vssi, pb, 5e-3);
  if (k > 0.0) {
    ckt.add_coupled_inductors("Kpins", pa, kGround, pb, kGround, l_pin, l_pin, k);
  } else {
    ckt.add_inductor("Lpa", pa, kGround, l_pin);
    ckt.add_inductor("Lpb", pb, kGround, l_pin);
  }

  std::shared_ptr<const devices::MosfetModel> nmos(cal.tech.make_golden());
  std::shared_ptr<const devices::MosfetModel> pmos(cal.tech.make_golden());
  for (int i = 0; i < n_drivers; ++i) {
    const std::string idx = std::to_string(i);
    const NodeId in = ckt.node("in" + idx);
    const NodeId out = ckt.node("out" + idx);
    ckt.add_vsource("Vin" + idx, in, kGround,
                    waveform::Ramp{0.0, tech.vdd, 0.0, t_rise});
    ckt.add_mosfet("Mn" + idx, out, in, n_vssi, kGround, nmos);
    ckt.add_mosfet("Mp" + idx, out, in, n_vdd, n_vdd, pmos,
                   MosfetPolarity::kPmos);
    ckt.add_capacitor("Cl" + idx, out, kGround, tech.load_cap);
  }

  sim::TransientOptions opts;
  opts.t_stop = t_rise;
  opts.dt_max = t_rise / 200.0;
  const auto result = sim::run_transient(ckt, opts);  // ssnlint-ignore(SSN-L013)
  return result.waveform("vssi").maximum().value;
}

}  // namespace

int main() {
  benchutil::banner(
      "Extension: mutual coupling between parallel ground pins");

  const auto cal = analysis::calibrate(process::tech_180nm());
  const double l_pin = 5e-9;
  const int n_drivers = 8;
  const double t_rise = 0.1e-9;

  core::SsnScenario base;
  base.n_drivers = n_drivers;
  base.capacitance = 0.0;
  base.vdd = cal.tech.vdd;
  base.slope = cal.tech.vdd / t_rise;
  base.device = cal.asdm.params;

  io::TextTable table({"coupling k", "L_eff = L(1+k)/2 [nH]", "sim V_max [V]",
                       "Eqn 7 with L_eff [V]", "err %",
                       "vs uncoupled pins"});
  double v_uncoupled = 0.0;
  for (double k : {0.0, 0.3, 0.6, 0.9}) {
    const double l_eff = l_pin * (1.0 + k) / 2.0;
    const double v_sim = simulate_with_coupling(cal, l_pin, k, n_drivers, t_rise);
    // k iterates over exact literals, so the exact compare is intentional.
    if (k == 0.0) v_uncoupled = v_sim;  // ssnlint-ignore(SSN-L001)
    base.inductance = l_eff;
    const double v_model = core::LOnlyModel(base).v_max();
    table.add_row(
        {io::si_format(k, 3), io::si_format(l_eff * 1e9, 4),
         io::si_format(v_sim, 4), io::si_format(v_model, 4),
         io::si_format(benchutil::pct(numeric::relative_error(v_model, v_sim)),
                       3),
         "+" + io::si_format(benchutil::pct(v_sim / v_uncoupled - 1.0), 3) + "%"});
  }
  std::printf("%s", table.to_string().c_str());

  std::printf(
      "\ntakeaway: tightly coupled pins (k = 0.9) give back almost all of the\n"
      "second pin's benefit — the bounce rises ~%s%% over ideal parallel pins —\n"
      "and the paper's Eqn 7 keeps tracking the simulator once L_eff is used.\n",
      io::si_format(benchutil::pct(
                        simulate_with_coupling(cal, l_pin, 0.9, n_drivers, t_rise) /
                            v_uncoupled -
                        1.0),
                    3)
          .c_str());
  return 0;
}
