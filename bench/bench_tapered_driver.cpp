// Extension bench: the taper/SSN trade-off in multi-stage pad drivers
// (the territory of the paper's reference [11], Vemuru TVLSI 1997).
//
// At a fixed stage count, the taper factor sets how strong each pre-driver
// is relative to its load and therefore how fast an edge reaches the final
// stage's gate. By Eqn 7 (V_max grows with the slope S) a fast internal
// edge buys pad speed at the price of ground bounce. This bench sweeps the
// taper of 4-driver banks of 4-stage chains and reports the simulated
// internal edge rate, the bounce, and the pad delay.
#include "bench_util.hpp"

#include "analysis/calibrate.hpp"
#include "circuit/driver_chain.hpp"
#include "io/table.hpp"
#include "sim/engine.hpp"
#include "waveform/metrics.hpp"

#include <cstdio>

using namespace ssnkit;

int main() {
  benchutil::banner("Extension: taper factor vs SSN in multi-stage pad drivers");

  const auto cal = analysis::calibrate(process::tech_180nm());
  const double vdd = cal.tech.vdd;

  io::TextTable table({"taper a", "final-gate edge [ps]", "eff. slope [V/ns]",
                       "sim V_n peak [V]", "pad 50% delay [ps]"});
  std::printf("setup: 4 drivers x 4-stage chains, final stage W = nominal, "
              "core edge 0.3 ns, PGA ground pin\n\n");
  for (double taper : {2.0, 3.0, 4.5, 7.0}) {
    circuit::TaperedDriverSpec spec;
    spec.tech = cal.tech;
    spec.n_drivers = 4;
    spec.stages = 4;
    spec.taper = taper;
    spec.input_rise_time = 0.3e-9;
    auto bench = circuit::make_tapered_driver_bench(spec);

    sim::TransientOptions topts;
    topts.t_stop = 4e-9;
    topts.dt_max = 5e-12;
    const auto result = sim::run_transient(bench.circuit, topts);  // ssnlint-ignore(SSN-L013)

    // Internal edge at the final gate: 10%..90% rise time.
    const auto gate = result.waveform(bench.final_gate_node);
    const auto t10 = waveform::first_rising_crossing(gate, 0.1 * vdd);
    const auto t90 = waveform::first_rising_crossing(gate, 0.9 * vdd);
    const double edge =
        (t10 && t90 && *t90 > *t10) ? (*t90 - *t10) : 0.0;
    const double slope = edge > 0.0 ? 0.8 * vdd / edge : 0.0;

    const double v_n = result.waveform("vssi").maximum().value;
    const auto cross = waveform::first_falling_crossing(
        result.waveform(bench.output_nodes.front()), 0.5 * vdd);

    table.add_row({io::si_format(taper, 3), io::si_format(edge * 1e12, 4),
                   io::si_format(slope * 1e-9, 4), io::si_format(v_n, 4),
                   io::si_format(cross.value_or(0.0) * 1e12, 4)});
  }
  std::printf("%s", table.to_string().c_str());

  std::printf(
      "\nreading: at a fixed stage count, a small taper (a = 2) leaves each\n"
      "pre-driver strong relative to its load, so the final gate sees a fast\n"
      "edge -> high slope S -> more bounce (Eqn 7) but a quick pad. Widening\n"
      "the taper slows the internal edge, trading pad delay for a large SSN\n"
      "reduction — the delay/noise knob reference [11] optimizes.\n");
  return 0;
}
