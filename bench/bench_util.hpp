// Shared helpers for the reproduction bench binaries.
#pragma once

#include <cstdio>
#include <string>

namespace benchutil {

inline void banner(const std::string& title) {
  std::printf("\n=============================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("=============================================================\n");
}

inline void section(const std::string& title) {
  std::printf("\n--- %s ---\n", title.c_str());
}

inline double pct(double x) { return 100.0 * x; }

}  // namespace benchutil
